//! The §3.3 power-sum neighborhood code and its decoders.
//!
//! A node `x` with neighborhood `N(x) ⊆ {1..n}` encodes its neighbors as the
//! vector `b(x) = A(k,n)·x` where `A_{p,i} = i^p`, i.e. the `k` power sums
//! `b_p = Σ_{w∈N(x)} ID(w)^p`, `p = 1..k`. By Wright's theorem (the paper's
//! Theorem 1, "equal sums of like powers"), the power sums of a set of at most
//! `k` distinct positive integers determine the set uniquely — so any node of
//! degree ≤ k can be decoded exactly.
//!
//! Two decoders are provided:
//!
//! - [`NewtonDecoder`] — the production decoder: Newton's identities convert the
//!   power sums `p_1..p_d` into elementary symmetric polynomials `e_1..e_d`; the
//!   neighbor IDs are then the integer roots of
//!   `x^d − e₁x^{d−1} + e₂x^{d−2} − … ± e_d`. For `d ≤ 2` — the only degrees
//!   Algorithm 1 decodes when `k ≤ 2`, and the bulk tier's hot path — the
//!   roots come out in closed form (`O(1)`: exact integer discriminant +
//!   square root); higher degrees fall back to trial synthetic division over
//!   the candidates `1..=n` (`O(n·d)` bignum operations). No preprocessing.
//! - [`LookupDecoder`] — the paper's literal Lemma 2 construction: a
//!   precomputed table of all `≤ k`-subsets of `{1..n}` keyed by their power-sum
//!   vector. `O(n^k)` space, `O(k log n)`-ish lookups; used to cross-validate
//!   the Newton decoder on small instances.
//!
//! Both decoders return `None` for vectors that are not the image of any
//! `≤ k`-subset; the BUILD protocol uses this for its *robust rejection* of
//! graphs that are not `k`-degenerate (Theorem 2's recognition variant).

use crate::bigint::BigInt;
use std::collections::HashMap;

/// Compute the power sums `p = 1..=k` of a set of IDs.
///
/// This is the message body of the §3.3 protocol (`b(x) = A(k,n)·x`).
///
/// ```
/// use wb_math::powersum::{power_sums, NewtonDecoder};
///
/// let sums = power_sums(&[3, 19, 42], 3);
/// assert_eq!(sums[0].to_u64(), Some(3 + 19 + 42));
/// // Wright's theorem: the sums identify the set uniquely — and the
/// // decoder recovers it.
/// let decoder = NewtonDecoder::new(100);
/// assert_eq!(decoder.decode(&sums, 3), Some(vec![3, 19, 42]));
/// ```
pub fn power_sums(ids: &[u32], k: usize) -> Vec<BigInt> {
    let mut sums = vec![BigInt::zero(); k];
    for &id in ids {
        debug_assert!(id >= 1, "IDs are 1-based");
        let mut pw = BigInt::one();
        let base = BigInt::from(id);
        for s in sums.iter_mut() {
            pw = &pw * &base;
            *s += &pw;
        }
    }
    sums
}

/// Add `id`'s contribution to an existing power-sum vector (incremental encode).
pub fn add_neighbor(sums: &mut [BigInt], id: u32) {
    let mut pw = BigInt::one();
    let base = BigInt::from(id);
    for s in sums.iter_mut() {
        pw = &pw * &base;
        *s += &pw;
    }
}

/// Remove `id`'s contribution from a power-sum vector.
///
/// This is the whiteboard update of Algorithm 1: when the output function prunes
/// node `x`, each neighbor's tuple is updated "according to the removal of `x`".
pub fn remove_neighbor(sums: &mut [BigInt], id: u32) {
    let mut pw = BigInt::one();
    let base = BigInt::from(id);
    for s in sums.iter_mut() {
        pw = &pw * &base;
        *s -= &pw;
    }
}

/// Upper bound (in bits) of the `p`-th power sum over `{1..n}`: `n·n^p = n^{p+1}`.
///
/// Used to size the fixed-width message fields; summing over `p = 1..k` gives
/// Lemma 1's `k(k+1)·log n` bound.
pub fn power_sum_field_bits(n: usize, p: u32) -> u32 {
    // bits(n^{p+1}) ≤ (p+1)·bits(n)
    (p + 1) * crate::bits_for(n as u64)
}

/// Total bits for the `b(x)` vector, `Σ_{p=1..k} bits(n^{p+1})`.
pub fn power_sum_vector_bits(n: usize, k: usize) -> u32 {
    (1..=k as u32).map(|p| power_sum_field_bits(n, p)).sum()
}

/// Production decoder: Newton's identities + integer root extraction.
#[derive(Clone, Debug)]
pub struct NewtonDecoder {
    n: usize,
}

/// Exact integer square root (largest `x` with `x² ≤ v`).
fn isqrt_u128(v: u128) -> u128 {
    if v == 0 {
        return 0;
    }
    // Float seed, then clamp to exactness in both directions: for v near
    // 2¹²⁸ the f64 rounding error can put the seed on either side of the
    // true root (and integer Newton only converges from above), so correct
    // upward first, then downward.
    let mut x = (v as f64).sqrt() as u128 + 1;
    loop {
        let y = (x + v / x) / 2;
        if y >= x {
            break;
        }
        x = y;
    }
    while (x + 1).checked_mul(x + 1).is_some_and(|sq| sq <= v) {
        x += 1;
    }
    while x.checked_mul(x).map_or(true, |sq| sq > v) {
        x -= 1;
    }
    x
}

impl NewtonDecoder {
    /// Decoder for ID domain `{1..n}`.
    pub fn new(n: usize) -> Self {
        NewtonDecoder { n }
    }

    /// Recover the unique set of `degree` distinct IDs in `1..=n` whose power
    /// sums are `sums[0..degree]` (`sums[p-1]` = p-th power sum). Returns
    /// `None` if no such set exists.
    ///
    /// Requires `sums.len() >= degree`.
    pub fn decode(&self, sums: &[BigInt], degree: usize) -> Option<Vec<u32>> {
        let d = degree;
        assert!(
            sums.len() >= d,
            "need at least {d} power sums, got {}",
            sums.len()
        );
        if d == 0 {
            return if sums.iter().all(|s| s.is_zero()) {
                Some(Vec::new())
            } else {
                None
            };
        }
        // Newton's identities: e_m = (1/m)·Σ_{i=1..m} (−1)^{i−1} e_{m−i} p_i.
        let mut e = Vec::with_capacity(d + 1);
        e.push(BigInt::one()); // e_0
        for m in 1..=d {
            let mut acc = BigInt::zero();
            for i in 1..=m {
                let term = &e[m - i] * &sums[i - 1];
                if i % 2 == 1 {
                    acc += &term;
                } else {
                    acc -= &term;
                }
            }
            let (q, r) = acc.div_rem_u64(m as u64);
            if r != 0 {
                return None; // not an integer symmetric function: invalid image
            }
            if q.is_negative() {
                return None; // elementary symmetric of positive roots must be ≥ 0
            }
            e.push(q);
        }
        // Closed-form fast paths for d ≤ 2 — the degrees Algorithm 1
        // actually decodes when k ≤ 2, and the hot path of the bulk tier's
        // BUILD referee: root extraction in O(1) instead of the O(n)
        // candidate scan below (at n = 10⁵ that is the difference between
        // an O(n)- and an O(n²)-time output function). Every rejection the
        // scan would produce (non-integer, out-of-range, repeated or
        // missing roots) is reproduced exactly.
        if d == 1 {
            // P(x) = x − e₁: the single neighbor is e₁ itself.
            return match e[1].to_u64() {
                Some(r) if r >= 1 && r <= self.n as u64 => Some(vec![r as u32]),
                _ => None,
            };
        }
        if d == 2 {
            if let (Some(s), Some(prod)) = (e[1].to_u64(), e[2].to_u64()) {
                // P(x) = x² − s·x + prod, roots distinct positive integers.
                let disc = match ((s as u128) * (s as u128)).checked_sub(4 * prod as u128) {
                    Some(disc) => disc,
                    None => return None, // complex roots: invalid image
                };
                let sq = isqrt_u128(disc);
                if sq * sq != disc || sq == 0 || (s as u128 + sq) % 2 != 0 {
                    // Not a perfect square (irrational roots), a double root
                    // (IDs are distinct), or non-integer roots.
                    return None;
                }
                let r1 = (s as u128 - sq) / 2;
                let r2 = (s as u128 + sq) / 2;
                return (r1 >= 1 && r2 <= self.n as u128).then(|| vec![r1 as u32, r2 as u32]);
            }
            // Sums past u64 (gigantic n): fall through to the general scan.
        }
        // Monic polynomial with the neighbor IDs as roots:
        //   P(x) = Σ_{j=0..d} (−1)^j e_j x^{d−j};   coeffs[i] = coefficient of x^i.
        let mut coeffs: Vec<BigInt> = (0..=d)
            .map(|i| {
                let j = d - i;
                if j % 2 == 0 {
                    e[j].clone()
                } else {
                    -e[j].clone()
                }
            })
            .collect();
        let mut roots = Vec::with_capacity(d);
        let mut deg = d;
        'candidates: for r in 1..=self.n as u64 {
            if deg == 0 {
                break;
            }
            // Quick filter: r must divide the (nonzero) constant term.
            if !coeffs[0].is_zero() {
                let (_, rem) = coeffs[0].div_rem_u64(r);
                if rem != 0 {
                    continue 'candidates;
                }
            } else {
                // 0 is a root of the remaining polynomial, but 0 is not a valid
                // ID — the image is invalid.
                return None;
            }
            // Horner evaluation at r.
            let rb = BigInt::from(r);
            let mut val = coeffs[deg].clone();
            for i in (0..deg).rev() {
                val = &(&val * &rb) + &coeffs[i];
            }
            if val.is_zero() {
                // Synthetic division by (x − r): roots are distinct, so each
                // candidate divides at most once.
                let mut next = vec![BigInt::zero(); deg];
                next[deg - 1] = coeffs[deg].clone();
                for i in (0..deg - 1).rev() {
                    next[i] = &(&next[i + 1] * &rb) + &coeffs[i + 1];
                }
                coeffs = next;
                deg -= 1;
                roots.push(r as u32);
            }
        }
        if deg != 0 {
            return None; // fewer than d roots in {1..n}: invalid image
        }
        Some(roots) // ascending by construction
    }
}

/// The paper's Lemma 2 lookup table: all `≤ k`-subsets of `{1..n}` indexed by
/// their power-sum vectors.
pub struct LookupDecoder {
    n: usize,
    k: usize,
    table: HashMap<Vec<BigInt>, Vec<u32>>,
}

impl LookupDecoder {
    /// Safety valve for the `O(n^k)` table.
    const MAX_ENTRIES: u64 = 4_000_000;

    /// Precompute the table. Panics if `Σ_{d≤k} C(n,d)` exceeds an internal
    /// limit — the lookup decoder is a small-instance cross-check; use
    /// [`NewtonDecoder`] in production.
    pub fn new(n: usize, k: usize) -> Self {
        let total: u64 = (0..=k)
            .map(|d| {
                crate::counting::binomial(n as u64, d as u64)
                    .to_u64()
                    .unwrap_or(u64::MAX)
            })
            .fold(0u64, |a, b| a.saturating_add(b));
        assert!(
            total <= Self::MAX_ENTRIES,
            "lookup table would need {total} entries (> {}); use NewtonDecoder",
            Self::MAX_ENTRIES
        );
        let mut table = HashMap::with_capacity(total as usize);
        let mut subset: Vec<u32> = Vec::with_capacity(k);
        fn rec(
            start: u32,
            n: u32,
            k: usize,
            subset: &mut Vec<u32>,
            table: &mut HashMap<Vec<BigInt>, Vec<u32>>,
        ) {
            table.insert(power_sums(subset, k), subset.clone());
            if subset.len() == k {
                return;
            }
            for next in start..=n {
                subset.push(next);
                rec(next + 1, n, k, subset, table);
                subset.pop();
            }
        }
        rec(1, n as u32, k, &mut subset, &mut table);
        LookupDecoder { n, k, table }
    }

    /// Number of stored subsets.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// ID domain size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Maximum decodable degree.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Look up the subset with the given power sums (first `k` entries used).
    pub fn decode(&self, sums: &[BigInt], degree: usize) -> Option<Vec<u32>> {
        let key: Vec<BigInt> = sums[..self.k.min(sums.len())].to_vec();
        let found = self.table.get(&key)?;
        if found.len() != degree {
            return None;
        }
        Some(found.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn power_sums_of_empty_set_are_zero() {
        assert!(power_sums(&[], 4).iter().all(|s| s.is_zero()));
    }

    #[test]
    fn power_sums_example() {
        // {2, 3}: p1 = 5, p2 = 13, p3 = 35.
        let s = power_sums(&[2, 3], 3);
        assert_eq!(s[0].to_u64(), Some(5));
        assert_eq!(s[1].to_u64(), Some(13));
        assert_eq!(s[2].to_u64(), Some(35));
    }

    #[test]
    fn add_then_remove_is_identity() {
        let mut sums = power_sums(&[4, 9, 17], 5);
        let orig = sums.clone();
        add_neighbor(&mut sums, 23);
        remove_neighbor(&mut sums, 23);
        assert_eq!(sums, orig);
    }

    #[test]
    fn newton_decodes_known_sets() {
        let dec = NewtonDecoder::new(50);
        for set in [
            vec![],
            vec![7],
            vec![1, 2],
            vec![3, 19, 42],
            vec![1, 2, 3, 4, 5],
        ] {
            let k = set.len().max(1);
            let sums = power_sums(&set, k);
            assert_eq!(dec.decode(&sums, set.len()), Some(set.clone()), "{set:?}");
        }
    }

    #[test]
    fn newton_rejects_wrong_degree() {
        let dec = NewtonDecoder::new(50);
        let sums = power_sums(&[3, 19], 3);
        // Claiming degree 3 with the power sums of a 2-set must fail.
        assert_eq!(dec.decode(&sums, 3), None);
    }

    #[test]
    fn newton_rejects_out_of_range_roots() {
        // Sums of {3, 19} but ID domain only {1..10}.
        let dec = NewtonDecoder::new(10);
        let sums = power_sums(&[3, 19], 2);
        assert_eq!(dec.decode(&sums, 2), None);
    }

    #[test]
    fn newton_rejects_garbage() {
        let dec = NewtonDecoder::new(20);
        let sums = vec![BigInt::from(7u64), BigInt::from(8u64)];
        assert_eq!(dec.decode(&sums, 2), None);
    }

    #[test]
    fn isqrt_is_exact() {
        for v in 0u128..200 {
            let s = isqrt_u128(v);
            assert!(s * s <= v && (s + 1) * (s + 1) > v, "v = {v}");
        }
        for s in [
            1u128 << 20,
            (1 << 40) + 17,
            u64::MAX as u128,
            // Regression: near 2⁶⁰ the f64 seed of s² (≈ 2¹²⁰) can round
            // *below* the true root; the clamp must correct upward too.
            1_152_921_504_607_846_979,
            (1 << 60) - 1,
            (1 << 63) + 12_345,
        ] {
            assert_eq!(isqrt_u128(s * s), s, "s = {s}");
            assert_eq!(isqrt_u128(s * s - 1), s - 1, "s = {s}");
            assert_eq!(isqrt_u128(s * s + 1), s, "s = {s}");
        }
    }

    #[test]
    fn closed_form_small_degrees_match_brute_force_exhaustively() {
        // The d ≤ 2 fast paths must agree with an independent brute-force
        // oracle over the first d power sums — on every valid image AND on
        // every ±1 perturbation of it (the decoder, like the scan it
        // replaces, consults exactly the first d sums).
        let n = 12u32;
        let newton = NewtonDecoder::new(n as usize);
        let brute = |sums: &[BigInt], d: usize| -> Option<Vec<u32>> {
            match d {
                1 => (1..=n)
                    .find(|&x| power_sums(&[x], 1) == sums[..1])
                    .map(|x| vec![x]),
                2 => {
                    for x in 1..=n {
                        for y in (x + 1)..=n {
                            if power_sums(&[x, y], 2) == sums[..2] {
                                return Some(vec![x, y]);
                            }
                        }
                    }
                    None
                }
                _ => unreachable!(),
            }
        };
        for a in 1..=n {
            for b in a..=n {
                let set: Vec<u32> = if a == b { vec![a] } else { vec![a, b] };
                let d = set.len();
                let sums = power_sums(&set, d);
                assert_eq!(newton.decode(&sums, d), Some(set.clone()), "{set:?}");
                for which in 0..d {
                    for delta in [1i64, -1] {
                        let mut bad = sums.clone();
                        if delta == 1 {
                            bad[which] += &BigInt::one();
                        } else {
                            bad[which] -= &BigInt::one();
                        }
                        assert_eq!(
                            newton.decode(&bad, d),
                            brute(&bad, d),
                            "{set:?} perturbed sum {which} by {delta}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lookup_matches_newton_exhaustively_small() {
        let (n, k) = (9, 3);
        let lookup = LookupDecoder::new(n, k);
        let newton = NewtonDecoder::new(n);
        // all subsets of size ≤ 3 of {1..9}
        for mask in 0u32..(1 << n) {
            let set: Vec<u32> = (0..n as u32)
                .filter(|i| mask >> i & 1 == 1)
                .map(|i| i + 1)
                .collect();
            if set.len() > k {
                continue;
            }
            let sums = power_sums(&set, k);
            assert_eq!(lookup.decode(&sums, set.len()).as_ref(), Some(&set));
            assert_eq!(newton.decode(&sums, set.len()).as_ref(), Some(&set));
        }
    }

    /// Wright's theorem (paper Theorem 1): the map from ≤k-subsets to power-sum
    /// vectors is injective. Checked exhaustively for a small domain.
    #[test]
    fn wright_injectivity_exhaustive() {
        let (n, k) = (10, 3);
        let mut seen: HashMap<Vec<BigInt>, Vec<u32>> = HashMap::new();
        for mask in 0u32..(1 << n) {
            let set: Vec<u32> = (0..n as u32)
                .filter(|i| mask >> i & 1 == 1)
                .map(|i| i + 1)
                .collect();
            if set.len() > k {
                continue;
            }
            let sums = power_sums(&set, k);
            if let Some(prev) = seen.insert(sums, set.clone()) {
                panic!("power-sum collision between {prev:?} and {set:?}");
            }
        }
    }

    proptest! {
        /// Round-trip through the Newton decoder for random subsets and domains.
        #[test]
        fn newton_round_trips(
            n in 1usize..600,
            raw in proptest::collection::hash_set(1u32..=600, 0..6),
        ) {
            let set: Vec<u32> = {
                let mut v: Vec<u32> = raw.into_iter().map(|x| (x - 1) % n as u32 + 1).collect::<HashSet<_>>().into_iter().collect();
                v.sort_unstable();
                v
            };
            let k = set.len().max(1);
            let sums = power_sums(&set, k);
            let dec = NewtonDecoder::new(n);
            prop_assert_eq!(dec.decode(&sums, set.len()), Some(set));
        }

        /// Wright's theorem, randomized: distinct sets never share power sums.
        #[test]
        fn wright_no_collisions(
            a in proptest::collection::hash_set(1u32..=1000, 1..6),
            b in proptest::collection::hash_set(1u32..=1000, 1..6),
        ) {
            let mut av: Vec<u32> = a.into_iter().collect();
            let mut bv: Vec<u32> = b.into_iter().collect();
            av.sort_unstable();
            bv.sort_unstable();
            let k = av.len().max(bv.len());
            if av != bv {
                prop_assert_ne!(power_sums(&av, k), power_sums(&bv, k));
            }
        }

        /// Field-width bound of Lemma 1: every p-th power sum of any set fits in
        /// the declared field.
        #[test]
        fn field_bits_bound_holds(
            n in 1usize..300,
            seed in proptest::collection::hash_set(1u32..=300, 0..10),
        ) {
            let set: Vec<u32> = seed.into_iter().map(|x| (x - 1) % n as u32 + 1).collect::<HashSet<_>>().into_iter().collect();
            let k = 5usize.min(set.len().max(1));
            let sums = power_sums(&set, k);
            for (idx, s) in sums.iter().enumerate() {
                let p = idx as u32 + 1;
                prop_assert!(s.bits() <= power_sum_field_bits(n, p) as u64 + 1,
                    "p={p} sum={s} bits={} field={}", s.bits(), power_sum_field_bits(n, p));
            }
        }
    }
}
