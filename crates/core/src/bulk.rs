//! Columnar bulk-tier implementations of the `SIMSYNC` protocols.
//!
//! Every `SIMASYNC` protocol in this crate runs on the bulk engine for free
//! through [`wb_runtime::bulk::Oblivious`] (its messages are functions of
//! local views alone). The two observation-dependent simultaneous
//! protocols — rooted MIS (Theorem 5) and 2-CLIQUES (§5.1) — get genuine
//! columnar [`BulkProtocol`] implementations here: one state value holding
//! per-node flag arrays, with each write digested in `O(deg v)` instead of
//! the step engine's `O(n)` observation fan-out. That asymptotic drop is
//! what carries them from `n ≈ 10²` (campaign tier) to `n ≥ 10⁵`.
//!
//! Fidelity: `tests/bulk.rs` pins, for every graph up to `n = 5` and every
//! schedule, that these implementations produce exactly the step engine's
//! outcome. Message encodings are shared with the step nodes through
//! [`crate::codec`], and the referees delegate to the step protocols'
//! `output` over a materialized board, so the two forms cannot drift.

use crate::codec::read_id;
use crate::mis::MisGreedy;
use crate::two_cliques::{TwoCliques, TwoCliquesVerdict};
use wb_graph::{Graph, NodeId};
use wb_math::{id_bits, BitVec, BitWriter};
use wb_runtime::bulk::{BulkBoard, BulkProtocol};
use wb_runtime::{Model, Protocol};

/// Columnar state of a bulk rooted-MIS run.
pub struct MisBulkState {
    g: Graph,
    /// `N(root)` membership, precomputed once.
    root_adjacent: Vec<bool>,
    /// Whether some neighbor of `v` has announced membership.
    neighbor_joined: Vec<bool>,
}

impl BulkProtocol for MisGreedy {
    type State = MisBulkState;
    type Output = Vec<NodeId>;

    fn model(&self) -> Model {
        Model::SimSync
    }

    fn budget_bits(&self, n: usize) -> u32 {
        Protocol::budget_bits(self, n)
    }

    fn init(&self, g: &Graph) -> MisBulkState {
        let n = g.n();
        let mut root_adjacent = vec![false; n];
        // An out-of-range root (allowed by the step protocol: no node is the
        // root, nobody neighbors it) simply leaves the bitmap empty.
        if self.root() >= 1 && self.root() as usize <= n {
            for &u in g.neighbors(self.root()) {
                root_adjacent[u as usize - 1] = true;
            }
        }
        MisBulkState {
            g: g.clone(),
            root_adjacent,
            neighbor_joined: vec![false; n],
        }
    }

    fn compose(&self, state: &MisBulkState, v: NodeId) -> BitVec {
        let i = v as usize - 1;
        let join = v == self.root() || (!state.root_adjacent[i] && !state.neighbor_joined[i]);
        let mut w = BitWriter::new();
        crate::codec::write_id(&mut w, v, state.g.n());
        w.write_bool(join);
        w.finish()
    }

    fn observe(&self, state: &mut MisBulkState, v: NodeId, msg: &BitVec) {
        // The join flag is the bit after the ID field.
        let joined = msg.get(id_bits(state.g.n()) as usize);
        if joined {
            for &u in state.g.neighbors(v) {
                state.neighbor_joined[u as usize - 1] = true;
            }
        }
    }

    fn output(&self, n: usize, board: &BulkBoard) -> Vec<NodeId> {
        Protocol::output(self, n, &board.to_whiteboard())
    }
}

/// Columnar state of a bulk 2-CLIQUES run.
pub struct TwoCliquesBulkState {
    g: Graph,
    /// Messages on the board so far (identical for every alive node under
    /// `SIMSYNC`: everyone observes every write).
    board_len: usize,
    /// Side labels seen among each node's written neighbors.
    saw_side: Vec<[bool; 2]>,
}

impl BulkProtocol for TwoCliques {
    type State = TwoCliquesBulkState;
    type Output = TwoCliquesVerdict;

    fn model(&self) -> Model {
        Model::SimSync
    }

    fn budget_bits(&self, n: usize) -> u32 {
        Protocol::budget_bits(self, n)
    }

    fn init(&self, g: &Graph) -> TwoCliquesBulkState {
        TwoCliquesBulkState {
            board_len: 0,
            saw_side: vec![[false; 2]; g.n()],
            g: g.clone(),
        }
    }

    fn compose(&self, state: &TwoCliquesBulkState, v: NodeId) -> BitVec {
        let tag = match (state.board_len, state.saw_side[v as usize - 1]) {
            (0, _) => 0u64,           // first writer overall: side 0
            (_, [false, false]) => 1, // fresh component: side 1
            (_, [true, false]) => 0,  // copy the unanimous side
            (_, [false, true]) => 1,
            (_, [true, true]) => 2, // disagreement: "no"
        };
        let mut w = BitWriter::new();
        crate::codec::write_id(&mut w, v, state.g.n());
        w.write_bits(tag, 2);
        w.finish()
    }

    fn observe(&self, state: &mut TwoCliquesBulkState, v: NodeId, msg: &BitVec) {
        state.board_len += 1;
        let tag = msg.get_bits(id_bits(state.g.n()) as usize, 2);
        if tag <= 1 {
            for &u in state.g.neighbors(v) {
                state.saw_side[u as usize - 1][tag as usize] = true;
            }
        }
    }

    fn output(&self, n: usize, board: &BulkBoard) -> TwoCliquesVerdict {
        Protocol::output(self, n, &board.to_whiteboard())
    }
}

/// Parse the writer IDs off any bulk board whose messages start with an ID
/// field (all of this crate's protocols) — a cheap structural sanity check
/// used by tests and the CLI.
pub fn leading_ids(n: usize, board: &BulkBoard) -> Vec<NodeId> {
    board
        .entries()
        .map(|e| read_id(&mut e.reader(), n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wb_graph::{checks, generators};
    use wb_runtime::bulk::{run_bulk, shuffled_schedule, BulkConfig};
    use wb_runtime::{run, ScheduleAdversary};

    #[test]
    fn bulk_mis_matches_step_engine_on_midsize_instances() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
        for trial in 0..6u64 {
            let g = generators::gnp(60, 0.08, &mut rng);
            let schedule = shuffled_schedule(g.n(), trial);
            let p = MisGreedy::new((trial % 60 + 1) as NodeId);
            let bulk = run_bulk(
                &p,
                &g,
                &schedule,
                None,
                &BulkConfig::default().with_batch(16),
            )
            .unwrap();
            let step = run(&p, &g, &mut ScheduleAdversary::new(schedule));
            assert_eq!(bulk.outcome, step.outcome, "trial {trial}");
            let set = bulk.outcome.unwrap();
            assert!(checks::is_rooted_mis(&g, &set, p.root()));
        }
    }

    #[test]
    fn bulk_mis_scales_to_thousands() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9);
        let g = generators::gnp(5_000, 4.0 / 5_000.0, &mut rng);
        let schedule = shuffled_schedule(g.n(), 1);
        let report = run_bulk(
            &MisGreedy::new(1),
            &g,
            &schedule,
            None,
            &BulkConfig::default(),
        )
        .unwrap();
        let set = report.outcome.unwrap();
        assert!(checks::is_rooted_mis(&g, &set, 1));
        assert_eq!(report.rounds, 5_000);
        assert_eq!(report.board.len(), 5_000);
    }

    #[test]
    fn bulk_two_cliques_decides_both_classes() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
        for half in [3usize, 8, 40] {
            let yes = generators::two_cliques(half);
            let no = generators::connected_regular_impostor(half, &mut rng);
            for seed in 0..4 {
                let ry = run_bulk(
                    &TwoCliques,
                    &yes,
                    &shuffled_schedule(yes.n(), seed),
                    None,
                    &BulkConfig::default(),
                )
                .unwrap();
                assert_eq!(ry.outcome.unwrap(), TwoCliquesVerdict::TwoCliques);
                let rn = run_bulk(
                    &TwoCliques,
                    &no,
                    &shuffled_schedule(no.n(), seed),
                    None,
                    &BulkConfig::default(),
                )
                .unwrap();
                assert_eq!(rn.outcome.unwrap(), TwoCliquesVerdict::NotTwoCliques);
            }
        }
    }

    #[test]
    fn bulk_two_cliques_matches_step_engine_schedule_for_schedule() {
        let g = generators::two_cliques(4);
        for seed in 0..10 {
            let schedule = shuffled_schedule(g.n(), seed);
            let bulk = run_bulk(&TwoCliques, &g, &schedule, None, &BulkConfig::default()).unwrap();
            let step = run(&TwoCliques, &g, &mut ScheduleAdversary::new(schedule));
            assert_eq!(bulk.outcome, step.outcome, "seed {seed}");
        }
    }

    #[test]
    fn leading_ids_recover_the_schedule() {
        let g = generators::path(9);
        let schedule = shuffled_schedule(9, 4);
        let report = run_bulk(
            &MisGreedy::new(1),
            &g,
            &schedule,
            None,
            &BulkConfig::default(),
        )
        .unwrap();
        assert_eq!(leading_ids(9, &report.board), schedule);
    }
}
