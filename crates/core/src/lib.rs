//! The shared-whiteboard protocols of Becker et al. (SPAA 2012).
//!
//! Every protocol the paper constructs, as a [`wb_runtime::Protocol`]:
//!
//! | module | paper | model | problem |
//! |---|---|---|---|
//! | [`build`] | §3, Thm 2 | `SIMASYNC[k² log n]` | BUILD on degeneracy-≤k graphs, robust rejection |
//! | [`build_mixed`] | §3 closing remark | `SIMASYNC[k² log n]` | BUILD on the low-or-high-degree class (dense graphs included) |
//! | [`mis`] | Thm 5 | `SIMSYNC[log n]` | maximal independent set containing a root |
//! | [`two_cliques`] | §5.1 | `SIMSYNC[log n]` | is G two disjoint n-cliques? |
//! | [`two_cliques_randomized`] | Open Pb 4 | `SIMASYNC[log n]` (public coin) | 2-CLIQUES, one-sided error |
//! | [`bfs`] | Thm 7, Thm 10, Cor 4 | `ASYNC`/`SYNC[log n]` | BFS forests (EOB / bipartite / general) |
//! | [`spanning`] | §6 | `SYNC[log n]` | spanning forests from BFS parent edges |
//! | [`connectivity`] | §6 / Open Pb 2 | `SYNC[log n]` | connectivity + component map |
//! | [`subgraph`] | Thm 9 | `SIMASYNC[f(n)]` | subgraph induced by `{v_1..v_f(n)}` |
//! | [`triangle`] | Thm 3 context | `SIMASYNC` | triangle detection (degenerate / Θ(n)-bit) |
//! | [`hard_problems`] | §1, §4, \[2\] | `SIMASYNC` | SQUARE, DIAMETER ≤ 3 brackets |
//! | [`statistics`] | §1 motivation | `SIMASYNC[2 log n]` | edge count, degree statistics |
//! | [`naive`] | §1 | `SIMASYNC[n]` | BUILD by writing whole neighborhoods |
//!
//! All message budgets are enforced in bits by the runtime, so each protocol's
//! `budget_bits` is a checked restatement of the paper's message-size lemma.
//!
//! Three infrastructure modules tie the protocols to the execution tiers:
//! [`registry`] (one spec → protocol + oracle table feeding the exhaustive,
//! statistical, and bulk tiers alike), [`bulk`] (columnar
//! `wb_runtime::BulkProtocol` implementations of the observation-dependent
//! simultaneous protocols, for `n ≥ 10⁵`), and [`workload`] (named graph
//! families). The full paper-theorem → module map, with per-protocol model
//! lattices and board-size bounds, is `docs/PROTOCOLS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod build;
pub mod build_mixed;
pub mod bulk;
pub mod codec;
pub mod connectivity;
pub mod hard_problems;
pub mod mis;
pub mod naive;
pub mod registry;
pub mod spanning;
pub mod statistics;
pub mod subgraph;
pub mod triangle;
pub mod two_cliques;
pub mod two_cliques_randomized;
pub mod workload;

/// The engine-independent protocol-step surface, re-exported for consumers
/// that must not touch `wb-runtime`'s execution machinery: the certificate
/// verifier (`wb-verify`) replays protocol steps through these traits and
/// nothing else — no `Engine`, no explorer, no undo log.
pub mod steps {
    pub use wb_runtime::adapt::Promote;
    pub use wb_runtime::{
        FaultKind, FaultPlan, LocalView, Model, Node, Outcome, Protocol, Whiteboard,
    };
}

pub use bfs::{AsyncBipartiteBfs, BfsOutput, EobBfs, SyncBfs};
pub use build::{BuildDegenerate, BuildError};
pub use build_mixed::BuildMixed;
pub use connectivity::{ConnectivityReport, ConnectivitySync};
pub use hard_problems::{DiameterAtMost3FullRow, SquareFullRow, SquareViaBuild};
pub use mis::MisGreedy;
pub use naive::NaiveBuild;
pub use spanning::{SpanningForest, SpanningForestSync};
pub use statistics::{DegreeStats, DegreeSummary, EdgeCount};
pub use subgraph::SubgraphPrefix;
pub use triangle::{TriangleFullRow, TriangleViaBuild};
pub use two_cliques::TwoCliques;
pub use two_cliques_randomized::TwoCliquesRandomized;
