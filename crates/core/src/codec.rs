//! Tiny shared field codecs. Every message in the paper starts with the
//! writer's identifier; these helpers keep the field widths consistent across
//! protocols (IDs use `⌈log₂ n⌉`-ish fixed width, see [`wb_math::id_bits`]).

use wb_graph::NodeId;
use wb_math::{id_bits, BitReader, BitWriter};

/// Append a node ID (`1..=n`).
pub fn write_id(w: &mut BitWriter, id: NodeId, n: usize) {
    w.write_bits(id as u64, id_bits(n));
}

/// Read a node ID.
pub fn read_id(r: &mut BitReader<'_>, n: usize) -> NodeId {
    r.read_bits(id_bits(n)) as NodeId
}

/// Append an ID-or-ROOT field (0 encodes ROOT).
pub fn write_opt_id(w: &mut BitWriter, id: Option<NodeId>, n: usize) {
    w.write_bits(id.unwrap_or(0) as u64, id_bits(n));
}

/// Read an ID-or-ROOT field.
pub fn read_opt_id(r: &mut BitReader<'_>, n: usize) -> Option<NodeId> {
    match r.read_bits(id_bits(n)) {
        0 => None,
        v => Some(v as NodeId),
    }
}

/// Append a count in `0..=n` (degrees, layer indices, edge tallies).
pub fn write_count(w: &mut BitWriter, value: u64, n: usize) {
    w.write_bits(value, id_bits(n));
}

/// Read a count.
pub fn read_count(r: &mut BitReader<'_>, n: usize) -> u64 {
    r.read_bits(id_bits(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wb_math::BitVec;

    fn round_trip(f: impl FnOnce(&mut BitWriter)) -> BitVec {
        let mut w = BitWriter::new();
        f(&mut w);
        w.finish()
    }

    #[test]
    fn id_round_trip() {
        let bv = round_trip(|w| write_id(w, 37, 100));
        assert_eq!(read_id(&mut BitReader::new(&bv), 100), 37);
        assert_eq!(bv.len(), 7);
    }

    #[test]
    fn opt_id_round_trip() {
        let bv = round_trip(|w| {
            write_opt_id(w, None, 50);
            write_opt_id(w, Some(50), 50);
        });
        let mut r = BitReader::new(&bv);
        assert_eq!(read_opt_id(&mut r, 50), None);
        assert_eq!(read_opt_id(&mut r, 50), Some(50));
    }

    #[test]
    fn count_round_trip() {
        let bv = round_trip(|w| write_count(w, 63, 63));
        assert_eq!(read_count(&mut BitReader::new(&bv), 63), 63);
    }
}
