//! The §3 closing extension: BUILD for graphs with a *low-or-high* elimination
//! order, in `SIMASYNC[O(k² log n)]`.
//!
//! "It is worth to mention that with our tools we can deal with graphs having
//! a node ordering where each node v has degree at most k **or at least
//! n−k−1**, in the graph induced by nodes appearing later than v in the
//! ordering."
//!
//! Each node writes *two* power-sum vectors: one for its neighborhood and one
//! for its non-neighborhood (complement row). The referee prunes a node
//! whenever its remaining degree is ≤ k (decode the neighbor sums) **or** its
//! remaining co-degree is ≤ k (decode the non-neighbor sums; its neighbors
//! are everyone else still alive). Both vectors are maintained incrementally
//! under removals, exactly like Algorithm 1. The class contains *dense*
//! graphs (complements of k-degenerate graphs, near-cliques), which the plain
//! degeneracy protocol must reject — yet message size stays `O(k² log n)`.

use crate::build::BuildError;
use crate::codec::{read_id, write_id};
use wb_graph::{Graph, NodeId};
use wb_math::powersum::{self, NewtonDecoder};
use wb_math::{id_bits, BigInt, BitReader, BitVec, BitWriter};
use wb_runtime::{LocalView, Model, Node, Protocol, Whiteboard};

/// BUILD on the low-or-high-degree elimination class.
#[derive(Clone, Debug)]
pub struct BuildMixed {
    k: usize,
}

impl BuildMixed {
    /// Protocol for parameter `k ≥ 1` (low side: degree ≤ k; high side:
    /// degree ≥ survivors − k − 1).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        BuildMixed { k }
    }

    /// The class parameter.
    pub fn k(&self) -> usize {
        self.k
    }
}

/// Stateless SIMASYNC node: writes `(ID, degree, b(N), b(V∖N∖{v}))`.
#[derive(Clone)]
pub struct BuildMixedNode {
    k: usize,
}

impl Node for BuildMixedNode {
    fn observe(&mut self, _v: &LocalView, _s: usize, _w: NodeId, _m: &BitVec) {
        unreachable!("SIMASYNC nodes are never shown the board");
    }

    fn compose(&mut self, view: &LocalView) -> BitVec {
        let mut w = BitWriter::new();
        write_id(&mut w, view.id, view.n);
        w.write_bits(view.degree() as u64, id_bits(view.n));
        let nbr_sums = powersum::power_sums(&view.neighbors, self.k);
        let non_neighbors: Vec<NodeId> = (1..=view.n as NodeId)
            .filter(|&u| u != view.id && !view.is_neighbor(u))
            .collect();
        let co_sums = powersum::power_sums(&non_neighbors, self.k);
        for (idx, s) in nbr_sums.iter().chain(co_sums.iter()).enumerate() {
            let p = (idx % self.k) as u32 + 1;
            w.write_big(s, powersum::power_sum_field_bits(view.n, p));
        }
        w.finish()
    }
}

struct MixedTuple {
    degree: usize,
    nbr_sums: Vec<BigInt>,
    co_sums: Vec<BigInt>,
}

impl Protocol for BuildMixed {
    type Node = BuildMixedNode;
    type Output = Result<Graph, BuildError>;

    fn model(&self) -> Model {
        Model::SimAsync
    }

    fn budget_bits(&self, n: usize) -> u32 {
        2 * id_bits(n) + 2 * powersum::power_sum_vector_bits(n, self.k)
    }

    fn spawn(&self, _view: &LocalView) -> BuildMixedNode {
        BuildMixedNode { k: self.k }
    }

    fn output(&self, n: usize, board: &Whiteboard) -> Self::Output {
        let mut tuples: Vec<Option<MixedTuple>> = (0..n).map(|_| None).collect();
        for entry in board.entries() {
            let mut r = BitReader::new(&entry.msg);
            let id = read_id(&mut r, n);
            let degree = r.read_bits(id_bits(n)) as usize;
            let nbr_sums: Vec<BigInt> = (1..=self.k as u32)
                .map(|p| r.read_big(powersum::power_sum_field_bits(n, p)))
                .collect();
            let co_sums: Vec<BigInt> = (1..=self.k as u32)
                .map(|p| r.read_big(powersum::power_sum_field_bits(n, p)))
                .collect();
            tuples[id as usize - 1] = Some(MixedTuple {
                degree,
                nbr_sums,
                co_sums,
            });
        }
        // A slot left `None` is a crashed writer. Crashed nodes stay in the
        // peel's *universe* — survivors' degrees and both sum vectors still
        // count them — but can never themselves be picked, so the walk ends
        // once every present tuple is peeled. Edges incident to a crashed
        // node are recovered from its surviving neighbors' sums; edges
        // between two crashed nodes are unrecoverable (the sandwich oracle
        // accepts their absence).
        let mut unpeeled_present = tuples.iter().filter(|t| t.is_some()).count();
        let mut alive_mask: Vec<bool> = vec![true; n];

        let decoder = NewtonDecoder::new(n);
        let mut g = Graph::empty(n);
        let mut remaining = n;
        let mut alive_ids: Vec<NodeId> = (1..=n as NodeId).collect();
        while unpeeled_present > 0 {
            // Scan for a candidate: low remaining degree or low co-degree.
            // (O(n) per prune; the whole output function is O(n²·k) bignum ops.)
            let pick = alive_ids.iter().copied().find(|&v| {
                tuples[v as usize - 1]
                    .as_ref()
                    .is_some_and(|t| t.degree <= self.k || t.degree + self.k + 1 >= remaining)
            });
            let Some(x) = pick else {
                return Err(BuildError::NotKDegenerate);
            };
            let xi = x as usize - 1;
            let (degree_x, nbr_sums_x, co_sums_x) = {
                let t = tuples[xi].as_ref().expect("picked node is present");
                (t.degree, t.nbr_sums.clone(), t.co_sums.clone())
            };
            let neighbors: Vec<NodeId> = if degree_x <= self.k {
                decoder
                    .decode(&nbr_sums_x, degree_x)
                    .ok_or(BuildError::Undecodable { node: x })?
            } else {
                // High side: decode the co-neighbors; neighbors = the rest.
                let co_degree = remaining - 1 - degree_x;
                let non = decoder
                    .decode(&co_sums_x, co_degree)
                    .ok_or(BuildError::Undecodable { node: x })?;
                let mut non_set = vec![false; n];
                for &u in &non {
                    if !alive_mask[u as usize - 1] || u == x {
                        return Err(BuildError::Undecodable { node: x });
                    }
                    non_set[u as usize - 1] = true;
                }
                alive_ids
                    .iter()
                    .copied()
                    .filter(|&u| u != x && !non_set[u as usize - 1])
                    .collect()
            };
            // Record edges and update both sum vectors of the survivors.
            let mut is_neighbor = vec![false; n];
            for &u in &neighbors {
                let ui = u as usize - 1;
                if !alive_mask[ui] || u == x || tuples[ui].as_ref().is_some_and(|t| t.degree == 0) {
                    return Err(BuildError::Undecodable { node: x });
                }
                is_neighbor[ui] = true;
                g.add_edge(x, u);
            }
            alive_mask[xi] = false;
            for &u in &alive_ids {
                if u == x {
                    continue;
                }
                let ui = u as usize - 1;
                let Some(tu) = tuples[ui].as_mut() else {
                    continue;
                };
                if is_neighbor[ui] {
                    tu.degree -= 1;
                    powersum::remove_neighbor(&mut tu.nbr_sums, x);
                } else {
                    powersum::remove_neighbor(&mut tu.co_sums, x);
                }
            }
            alive_ids.retain(|&u| u != x);
            remaining -= 1;
            unpeeled_present -= 1;
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wb_graph::{checks, generators};
    use wb_runtime::{run, MinIdAdversary, Outcome, RandomAdversary};

    fn reconstructs(k: usize, g: &Graph, seed: u64) {
        let p = BuildMixed::new(k);
        let report = run(&p, g, &mut RandomAdversary::new(seed));
        match report.outcome {
            Outcome::Success(Ok(h)) => assert_eq!(&h, g),
            other => panic!("expected reconstruction of {g:?}, got {other:?}"),
        }
    }

    #[test]
    fn rebuilds_sparse_class_members() {
        let mut rng = StdRng::seed_from_u64(1);
        for k in 1..=3 {
            let g = generators::k_degenerate(20, k, true, &mut rng);
            reconstructs(k, &g, k as u64);
        }
    }

    #[test]
    fn rebuilds_dense_complements() {
        // Complements of k-degenerate graphs are dense (Θ(n²) edges) and in
        // the class — the plain degeneracy protocol must reject these.
        let mut rng = StdRng::seed_from_u64(2);
        for k in 1..=3 {
            let g = generators::k_degenerate(18, k, true, &mut rng).complement();
            assert!(checks::mixed_elimination(&g, k).is_some());
            reconstructs(k, &g, k as u64 + 10);
            let plain = crate::build::BuildDegenerate::new(k);
            let report = run(&plain, &g, &mut MinIdAdversary);
            assert_eq!(
                report.outcome,
                Outcome::Success(Err(BuildError::NotKDegenerate)),
                "k={k}: dense complement should defeat the plain protocol"
            );
        }
    }

    #[test]
    fn rebuilds_cliques_and_empty_graphs() {
        reconstructs(1, &generators::clique(12), 3);
        reconstructs(1, &Graph::empty(12), 4);
        reconstructs(2, &Graph::empty(1), 5);
    }

    #[test]
    fn rebuilds_mixed_generator_output() {
        let mut rng = StdRng::seed_from_u64(3);
        for k in 1..=3 {
            for trial in 0..5 {
                let g = generators::mixed_low_high(24, k, &mut rng);
                assert!(checks::mixed_elimination(&g, k).is_some());
                reconstructs(k, &g, trial);
            }
        }
    }

    #[test]
    fn rejects_graphs_outside_the_class() {
        // The 3-cube: 3-regular on 8 nodes, neither low nor high at k = 1.
        let cube = Graph::from_edges(
            8,
            &[
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 1),
                (5, 6),
                (6, 7),
                (7, 8),
                (8, 5),
                (1, 5),
                (2, 6),
                (3, 7),
                (4, 8),
            ],
        );
        assert!(checks::mixed_elimination(&cube, 1).is_none());
        let p = BuildMixed::new(1);
        let report = run(&p, &cube, &mut MinIdAdversary);
        assert_eq!(
            report.outcome,
            Outcome::Success(Err(BuildError::NotKDegenerate))
        );
    }

    #[test]
    fn budget_is_twice_the_plain_protocol_plus_nothing() {
        let plain = crate::build::BuildDegenerate::new(3);
        let mixed = BuildMixed::new(3);
        let n = 500;
        assert!(mixed.budget_bits(n) <= 2 * plain.budget_bits(n));
        // …and still logarithmic: ≤ 2(k(k+1)+2)·⌈lg n⌉.
        assert!(mixed.budget_bits(n) as usize <= 2 * (3 * 4 + 2) * id_bits(n) as usize);
    }

    #[test]
    fn message_sizes_stay_logarithmic_on_dense_inputs() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::k_degenerate(100, 2, true, &mut rng).complement();
        let p = BuildMixed::new(2);
        let report = run(&p, &g, &mut RandomAdversary::new(1));
        assert!(report.max_message_bits() <= p.budget_bits(100) as usize);
        assert!(report.outcome.is_success());
        // Dense graph (≈ n²/2 edges), yet ~O(log n) bits per node:
        assert!(g.m() > 100 * 90 / 2);
        assert!(report.max_message_bits() < 200);
    }
}
