//! TRIANGLE detection protocols bracketing Theorem 3.
//!
//! Theorem 3 proves TRIANGLE ∉ `PSIMASYNC[o(n)]` (via the Fig. 1 reduction to
//! BUILD on bipartite graphs — executable in `wb-reductions`). Table 2 marks
//! the SIMSYNC cell "yes", but the journal text contains no protocol for it
//! and we could not reconstruct one; DESIGN.md §5 records this gap. What this
//! module ships are the two *provable* brackets:
//!
//! - [`TriangleViaBuild`] — on bounded-degeneracy inputs, BUILD is solvable in
//!   `SIMASYNC[k² log n]` (Theorem 2), so TRIANGLE is too: reconstruct, then
//!   count triangles locally. Covers every graph class for which the paper
//!   gives positive reconstruction results.
//! - [`TriangleFullRow`] — the trivial `SIMASYNC[n]` upper bound matching the
//!   `Ω(n)` lower bound of Theorem 3: full adjacency rows.

use crate::build::{BuildDegenerate, BuildError};
use crate::naive::NaiveBuild;
use wb_graph::checks;
use wb_runtime::{LocalView, Model, Protocol, Whiteboard};

/// TRIANGLE on degeneracy-≤k graphs via full reconstruction
/// (`SIMASYNC[k² log n]`).
#[derive(Clone, Debug)]
pub struct TriangleViaBuild {
    build: BuildDegenerate,
}

impl TriangleViaBuild {
    /// Protocol for degeneracy bound `k`.
    pub fn new(k: usize) -> Self {
        TriangleViaBuild {
            build: BuildDegenerate::new(k),
        }
    }
}

impl Protocol for TriangleViaBuild {
    type Node = crate::build::BuildNode;
    type Output = Result<bool, BuildError>;

    fn model(&self) -> Model {
        Model::SimAsync
    }

    fn budget_bits(&self, n: usize) -> u32 {
        self.build.budget_bits(n)
    }

    fn spawn(&self, view: &LocalView) -> Self::Node {
        self.build.spawn(view)
    }

    fn output(&self, n: usize, board: &Whiteboard) -> Self::Output {
        self.build
            .output(n, board)
            .map(|g| checks::has_triangle(&g))
    }
}

/// TRIANGLE on arbitrary graphs with Θ(n)-bit messages (`SIMASYNC[n]`).
#[derive(Clone, Copy, Debug, Default)]
pub struct TriangleFullRow;

impl Protocol for TriangleFullRow {
    type Node = crate::naive::NaiveNode;
    type Output = bool;

    fn model(&self) -> Model {
        Model::SimAsync
    }

    fn budget_bits(&self, n: usize) -> u32 {
        NaiveBuild.budget_bits(n)
    }

    fn spawn(&self, view: &LocalView) -> Self::Node {
        NaiveBuild.spawn(view)
    }

    fn output(&self, n: usize, board: &Whiteboard) -> bool {
        checks::has_triangle(&NaiveBuild.output(n, board))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wb_graph::{enumerate, generators};
    use wb_runtime::{run, Outcome, RandomAdversary};

    #[test]
    fn full_row_matches_oracle_on_all_small_graphs() {
        for g in enumerate::all_graphs(4) {
            let report = run(&TriangleFullRow, &g, &mut RandomAdversary::new(1));
            assert_eq!(report.outcome, Outcome::Success(checks::has_triangle(&g)));
        }
    }

    #[test]
    fn via_build_matches_oracle_on_degenerate_graphs() {
        let mut rng = StdRng::seed_from_u64(7);
        for k in 2..=4 {
            for trial in 0..6 {
                let g = generators::k_degenerate(25, k, trial % 2 == 0, &mut rng);
                let p = TriangleViaBuild::new(k);
                let report = run(&p, &g, &mut RandomAdversary::new(trial));
                assert_eq!(
                    report.outcome,
                    Outcome::Success(Ok(checks::has_triangle(&g))),
                    "k={k}"
                );
            }
        }
    }

    #[test]
    fn via_build_rejects_out_of_class_inputs() {
        let g = generators::clique(5); // degeneracy 4
        let p = TriangleViaBuild::new(2);
        let report = run(&p, &g, &mut RandomAdversary::new(0));
        assert_eq!(
            report.outcome,
            Outcome::Success(Err(BuildError::NotKDegenerate))
        );
    }

    #[test]
    fn triangle_in_sparse_graph_found() {
        // A 2-degenerate graph with one triangle.
        let mut g = generators::path(6);
        g.add_edge(1, 3);
        let p = TriangleViaBuild::new(2);
        let report = run(&p, &g, &mut RandomAdversary::new(2));
        assert_eq!(report.outcome, Outcome::Success(Ok(true)));
    }
}
