//! Spanning forests from the whiteboard (§6 / Open Problem 2 context).
//!
//! "One important task in wireless networks consists in computing a connected
//! spanning subgraph (e.g., a spanning tree) since the links of such subgraph
//! are used for communication." Whether SPANNING-TREE is solvable in `ASYNC`
//! is the paper's Open Problem 2; in `SYNC[log n]` it follows directly from
//! Theorem 10 — the BFS forest's parent edges span every component. This
//! module is that corollary as a protocol.

use crate::bfs::{BfsNode, SyncBfs};
use wb_graph::NodeId;
use wb_runtime::{LocalView, Model, Protocol, Whiteboard};

/// A spanning forest (one tree per connected component), as parent edges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanningForest {
    /// Tree edges `(child, parent)` sorted by child ID.
    pub edges: Vec<(NodeId, NodeId)>,
    /// One root per component, ascending.
    pub roots: Vec<NodeId>,
}

/// SPANNING-FOREST in `SYNC[log n]` via the Theorem 10 BFS protocol.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpanningForestSync;

impl Protocol for SpanningForestSync {
    type Node = BfsNode;
    type Output = SpanningForest;

    fn model(&self) -> Model {
        Model::Sync
    }

    fn budget_bits(&self, n: usize) -> u32 {
        SyncBfs.budget_bits(n)
    }

    fn spawn(&self, view: &LocalView) -> Self::Node {
        SyncBfs.spawn(view)
    }

    fn output(&self, n: usize, board: &Whiteboard) -> SpanningForest {
        let forest = SyncBfs.output(n, board);
        let edges = forest
            .parent
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|p| (i as NodeId + 1, p)))
            .collect();
        SpanningForest {
            edges,
            roots: forest.roots,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wb_graph::{checks, generators, Graph};
    use wb_runtime::{run, Outcome, RandomAdversary};

    fn validate(g: &Graph, sf: &SpanningForest) {
        // Every tree edge is a graph edge.
        for &(c, p) in &sf.edges {
            assert!(g.has_edge(c, p), "({c},{p}) not in G");
        }
        // |edges| = n − #components, and the forest connects each component.
        let comps = checks::components(g);
        assert_eq!(sf.edges.len(), g.n() - comps.len());
        assert_eq!(sf.roots.len(), comps.len());
        // The tree edges alone reconnect every component.
        let tree = Graph::from_edges(g.n(), &sf.edges);
        assert_eq!(checks::components(&tree), comps);
    }

    #[test]
    fn spans_random_graphs() {
        let mut rng = StdRng::seed_from_u64(8);
        for trial in 0..12 {
            let g = generators::gnp(25, 0.12, &mut rng);
            let report = run(&SpanningForestSync, &g, &mut RandomAdversary::new(trial));
            match report.outcome {
                Outcome::Success(sf) => validate(&g, &sf),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn spans_connected_graphs_with_a_single_tree() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = generators::k_tree(20, 2, &mut rng);
        let report = run(&SpanningForestSync, &g, &mut RandomAdversary::new(4));
        let sf = report.outcome.unwrap();
        assert_eq!(sf.roots, vec![1]);
        assert_eq!(sf.edges.len(), 19);
        validate(&g, &sf);
    }

    #[test]
    fn edgeless_graph_has_no_tree_edges() {
        let g = Graph::empty(5);
        let report = run(&SpanningForestSync, &g, &mut RandomAdversary::new(1));
        let sf = report.outcome.unwrap();
        assert!(sf.edges.is_empty());
        assert_eq!(sf.roots, vec![1, 2, 3, 4, 5]);
    }
}
