//! SUBGRAPH_f in `SIMASYNC[f(n)]` (Theorem 9).
//!
//! The problem: output the subgraph induced by keeping only edges among the
//! first `f(n)` nodes `{v_1 … v_{f(n)}}`. The protocol is the paper's one-liner:
//! "each node sends a vector consisting of the f(n) first bits of its line in
//! the adjacency matrix". Theorem 9 then shows `SUBGRAPH_f ∈
//! PSIMASYNC[f(n)] \ PSYNC[g(n)]` for every `g = o(f)` — message size and
//! synchronization power are orthogonal resources. The counting half lives in
//! `wb-reductions`; this module is the positive half.

use crate::codec::{read_id, write_id};
use wb_graph::{Graph, NodeId};
use wb_math::{id_bits, BitReader, BitVec, BitWriter};
use wb_runtime::{LocalView, Model, Node, Protocol, Whiteboard};

/// The SUBGRAPH_f protocol with prefix size `f = f(n)` fixed per instance
/// (the problem family is parameterized by the function `f`; a protocol runs
/// at one `n`, hence one prefix length).
#[derive(Clone, Debug)]
pub struct SubgraphPrefix {
    f: usize,
}

impl SubgraphPrefix {
    /// Keep edges among the first `f` nodes.
    pub fn new(f: usize) -> Self {
        assert!(f >= 1);
        SubgraphPrefix { f }
    }

    /// Convenience: `f(n) = ⌈√n⌉`, the regime used in the paper's separation
    /// sweep.
    pub fn sqrt_of(n: usize) -> Self {
        Self::new((n as f64).sqrt().ceil() as usize)
    }

    /// The prefix length.
    pub fn f(&self) -> usize {
        self.f
    }
}

/// Stateless SIMASYNC node.
#[derive(Clone)]
pub struct SubgraphNode {
    f: usize,
}

impl Node for SubgraphNode {
    fn observe(&mut self, _v: &LocalView, _s: usize, _w: NodeId, _m: &BitVec) {
        unreachable!("SIMASYNC nodes are never shown the board");
    }

    fn compose(&mut self, view: &LocalView) -> BitVec {
        let mut w = BitWriter::new();
        write_id(&mut w, view.id, view.n);
        for u in 1..=self.f.min(view.n) as NodeId {
            w.write_bool(view.is_neighbor(u));
        }
        w.finish()
    }
}

impl Protocol for SubgraphPrefix {
    type Node = SubgraphNode;
    type Output = Graph;

    fn model(&self) -> Model {
        Model::SimAsync
    }

    fn budget_bits(&self, n: usize) -> u32 {
        id_bits(n) + self.f.min(n) as u32
    }

    fn spawn(&self, _view: &LocalView) -> SubgraphNode {
        SubgraphNode { f: self.f }
    }

    fn output(&self, n: usize, board: &Whiteboard) -> Graph {
        let f = self.f.min(n);
        let mut g = Graph::empty(f);
        for e in board.entries() {
            let mut r = BitReader::new(&e.msg);
            let id = read_id(&mut r, n);
            if id as usize > f {
                continue;
            }
            for u in 1..=f as NodeId {
                if r.read_bool() && u != id {
                    g.add_edge(id, u);
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wb_graph::generators;
    use wb_runtime::exhaustive::{assert_explored, ExploreConfig};
    use wb_runtime::{run, Outcome, RandomAdversary};

    #[test]
    fn recovers_prefix_subgraph() {
        let mut rng = StdRng::seed_from_u64(3);
        for n in [5usize, 20, 60] {
            let g = generators::gnp(n, 0.3, &mut rng);
            for f in [1usize, 2, n / 2, n] {
                let p = SubgraphPrefix::new(f.max(1));
                let report = run(&p, &g, &mut RandomAdversary::new(f as u64));
                match report.outcome {
                    Outcome::Success(h) => assert_eq!(h, g.induced_prefix(f.max(1)), "n={n} f={f}"),
                    other => panic!("{other:?}"),
                }
            }
        }
    }

    #[test]
    fn schedule_independent() {
        let g = generators::cycle(4);
        let p = SubgraphPrefix::new(3);
        assert_explored(&p, &g, &ExploreConfig::default(), |h| {
            *h == g.induced_prefix(3)
        });
    }

    #[test]
    fn budget_scales_with_f_not_n() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 144;
        let g = generators::gnp(n, 0.2, &mut rng);
        let p = SubgraphPrefix::sqrt_of(n); // f = 12
        assert_eq!(p.f(), 12);
        let report = run(&p, &g, &mut RandomAdversary::new(9));
        assert!(report.outcome.is_success());
        assert_eq!(report.max_message_bits(), id_bits(n) as usize + 12);
    }

    #[test]
    fn f_larger_than_n_is_clamped() {
        let g = generators::path(4);
        let p = SubgraphPrefix::new(100);
        let report = run(&p, &g, &mut RandomAdversary::new(0));
        match report.outcome {
            Outcome::Success(h) => assert_eq!(h, g),
            other => panic!("{other:?}"),
        }
    }
}
