//! Rooted maximal independent set in `SIMSYNC[log n]` (Theorem 5).
//!
//! Input: a graph and a distinguished node `x` (part of the problem instance,
//! known to everyone). When the adversary picks `v`, it writes its ID — "I am
//! in the set" — iff `v = x`, or `v ∉ N(x)` and no neighbor of `v` has written
//! its ID yet; otherwise it writes "no". The set of announced IDs is a maximal
//! independent set containing `x`, no matter the adversary's order.

use crate::codec::{read_id, write_id};
use wb_graph::NodeId;
use wb_math::{id_bits, BitReader, BitVec, BitWriter};
use wb_runtime::{Commutativity, LocalView, Model, Node, Protocol, Whiteboard};

/// The greedy SIMSYNC rooted-MIS protocol.
///
/// ```
/// use wb_core::MisGreedy;
/// use wb_graph::{checks, generators};
/// use wb_runtime::{run, MaxIdAdversary};
///
/// let g = generators::star(9); // center v1
/// let set = run(&MisGreedy::new(1), &g, &mut MaxIdAdversary).outcome.unwrap();
/// assert_eq!(set, vec![1]); // the center dominates every leaf
/// assert!(checks::is_rooted_mis(&g, &set, 1));
/// ```
#[derive(Clone, Debug)]
pub struct MisGreedy {
    root: NodeId,
}

impl MisGreedy {
    /// Protocol for the instance rooted at `x`.
    pub fn new(root: NodeId) -> Self {
        MisGreedy { root }
    }

    /// The distinguished node.
    pub fn root(&self) -> NodeId {
        self.root
    }
}

/// Node state: has any of my neighbors already joined the set?
#[derive(Clone)]
pub struct MisNode {
    root: NodeId,
    neighbor_joined: bool,
}

impl Node for MisNode {
    fn observe(&mut self, view: &LocalView, _seq: usize, _writer: NodeId, msg: &BitVec) {
        let mut r = BitReader::new(msg);
        let id = read_id(&mut r, view.n);
        let joined = r.read_bool();
        if joined && view.is_neighbor(id) {
            self.neighbor_joined = true;
        }
    }

    fn compose(&mut self, view: &LocalView) -> BitVec {
        let join = view.id == self.root || (!view.is_neighbor(self.root) && !self.neighbor_joined);
        let mut w = BitWriter::new();
        write_id(&mut w, view.id, view.n);
        w.write_bool(join);
        w.finish()
    }
}

impl Protocol for MisGreedy {
    type Node = MisNode;
    type Output = Vec<NodeId>;

    fn model(&self) -> Model {
        Model::SimSync
    }

    fn budget_bits(&self, n: usize) -> u32 {
        id_bits(n) + 1
    }

    fn spawn(&self, _view: &LocalView) -> MisNode {
        MisNode {
            root: self.root,
            neighbor_joined: false,
        }
    }

    /// "The set of nodes with their IDs on the whiteboard."
    fn output(&self, n: usize, board: &Whiteboard) -> Vec<NodeId> {
        let mut set: Vec<NodeId> = board
            .entries()
            .iter()
            .filter_map(|e| {
                let mut r = BitReader::new(&e.msg);
                let id = read_id(&mut r, n);
                r.read_bool().then_some(id)
            })
            .collect();
        set.sort_unstable();
        set
    }

    /// The protocol is local: a node's state changes only on neighbor writes
    /// (`observe` checks `view.is_neighbor`), so non-adjacent writes commute.
    fn commutes(&self) -> Commutativity {
        Commutativity::NonAdjacent
    }

    /// Behavior depends on the view and the root only — no ID-order
    /// comparisons — so any automorphism fixing the root relabels
    /// executions faithfully.
    fn equivariant(&self) -> bool {
        true
    }

    fn pinned_nodes(&self) -> Vec<NodeId> {
        vec![self.root]
    }

    fn relabel_message(&self, n: usize, msg: &BitVec, perm: &[NodeId]) -> BitVec {
        let mut r = BitReader::new(msg);
        let id = read_id(&mut r, n);
        let join = r.read_bool();
        let mut w = BitWriter::new();
        write_id(&mut w, perm[id as usize - 1], n);
        w.write_bool(join);
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wb_graph::{checks, enumerate, generators, Graph};
    use wb_runtime::exhaustive::{assert_explored, ExploreConfig};
    use wb_runtime::{run, Outcome, PriorityAdversary, RandomAdversary};

    #[test]
    fn exhaustive_all_connected_graphs_n4_all_roots_all_orders() {
        // Full model checking: 38 connected graphs × 4 roots × all 24 orders.
        for g in enumerate::all_connected_graphs(4) {
            for root in 1..=4 {
                let p = MisGreedy::new(root);
                assert_explored(&p, &g, &ExploreConfig::default(), |set| {
                    checks::is_rooted_mis(&g, set, root)
                });
            }
        }
    }

    #[test]
    fn exhaustive_all_graphs_n3_including_disconnected() {
        for g in enumerate::all_graphs(3) {
            for root in 1..=3 {
                let p = MisGreedy::new(root);
                assert_explored(&p, &g, &ExploreConfig::default(), |set| {
                    checks::is_rooted_mis(&g, set, root)
                });
            }
        }
    }

    #[test]
    fn random_graphs_random_adversaries() {
        let mut rng = StdRng::seed_from_u64(5);
        for trial in 0..30 {
            let g = generators::gnp(40, 0.15, &mut rng);
            let root = (trial % 40 + 1) as NodeId;
            let p = MisGreedy::new(root);
            for seed in 0..4 {
                let report = run(&p, &g, &mut RandomAdversary::new(seed * 71 + trial));
                match &report.outcome {
                    Outcome::Success(set) => {
                        assert!(
                            checks::is_rooted_mis(&g, set, root),
                            "root {root} set {set:?}"
                        )
                    }
                    other => panic!("{other:?}"),
                }
            }
        }
    }

    #[test]
    fn adversarial_priority_orders() {
        // Orders engineered to tempt the greedy rule into conflicts: root
        // last, root first, neighbors of the root first.
        let g = generators::star(7);
        for root in [1 as NodeId, 4] {
            let p = MisGreedy::new(root);
            for priority in [
                vec![7, 6, 5, 4, 3, 2, 1],
                vec![1, 2, 3, 4, 5, 6, 7],
                vec![4, 1, 7, 2, 6, 3, 5],
            ] {
                let report = run(&p, &g, &mut PriorityAdversary::new(&priority));
                let set = match report.outcome {
                    Outcome::Success(s) => s,
                    other => panic!("{other:?}"),
                };
                assert!(
                    checks::is_rooted_mis(&g, &set, root),
                    "{priority:?} -> {set:?}"
                );
            }
        }
    }

    #[test]
    fn root_is_always_in_the_set() {
        let g = generators::clique(6);
        for root in 1..=6 {
            let p = MisGreedy::new(root);
            let report = run(&p, &g, &mut RandomAdversary::new(root as u64));
            let set = report.outcome.unwrap();
            assert_eq!(set, vec![root], "clique MIS is exactly the root");
        }
    }

    #[test]
    fn isolated_nodes_always_join() {
        let g = Graph::from_edges(5, &[(1, 2)]);
        let p = MisGreedy::new(1);
        assert_explored(&p, &g, &ExploreConfig::default(), |set| {
            set.contains(&3)
                && set.contains(&4)
                && set.contains(&5)
                && checks::is_rooted_mis(&g, set, 1)
        });
    }

    #[test]
    fn message_budget_is_log_n() {
        let g = generators::gnp(100, 0.1, &mut StdRng::seed_from_u64(8));
        let p = MisGreedy::new(17);
        let report = run(&p, &g, &mut RandomAdversary::new(3));
        assert_eq!(report.max_message_bits(), id_bits(100) as usize + 1);
    }
}
