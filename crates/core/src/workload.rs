//! Named graph families: one spec string → one reproducible instance.
//!
//! The CLI's `--workload`/`--graph-family`, the Monte Carlo campaign engine
//! (`wb-sim`), and the experiment binaries all select their input graphs
//! through [`graph_family`], so a family name means the same instance
//! everywhere (given the same `n` and seed). Specs are `name` or `name:ARG`:
//!
//! | spec            | family                                               |
//! |-----------------|------------------------------------------------------|
//! | `tree`          | random labeled tree (degeneracy 1)                   |
//! | `forest`        | random forest, 80% edge retention                    |
//! | `ktree:K`       | random K-tree                                        |
//! | `kdeg:K`        | random graph of degeneracy exactly ≤ K               |
//! | `mixed:K`       | low-or-high class (BUILD-MIXED's domain)             |
//! | `gnp:D`         | Erdős–Rényi with expected average degree D (def. 4)  |
//! | `gnp-lin:D`     | same model, O(n+m) skip sampler (bulk tier, n ≥ 10⁵) |
//! | `kdeg-lin:K`    | degeneracy exactly K, O(n·k) sampler (bulk tier)     |
//! | `eob`           | connected even-odd bipartite                         |
//! | `bipartite`     | bipartite with fixed halves                          |
//! | `two-cliques`   | two disjoint n/2-cliques                             |
//! | `impostor`      | connected (n/2−1)-regular non-two-cliques            |
//! | `clique`        | K_n                                                  |
//! | `cycle`         | C_n (n ≥ 3)                                          |
//! | `path`          | P_n                                                  |
//! | `file:PATH`     | edge list loaded from PATH                           |

use rand::rngs::StdRng;
use rand::SeedableRng;
use wb_graph::{generators, Graph};

/// Split `name:ARG` into `(name, Some(ARG))`, leaving `name` alone otherwise.
pub fn split_spec(spec: &str) -> (&str, Option<u64>) {
    match spec.split_once(':') {
        Some((k, v)) => (k, v.parse().ok()),
        None => (spec, None),
    }
}

/// Generate the instance named by `spec` at `n` nodes, deterministically
/// from `seed`. See the module table for the recognized families.
pub fn graph_family(spec: &str, n: usize, seed: u64) -> Result<Graph, String> {
    // `file:PATH` loads an edge list (the path may contain ':').
    if let Some(path) = spec.strip_prefix("file:") {
        return wb_graph::io::load_edge_list(std::path::Path::new(path))
            .map_err(|e| format!("cannot load '{path}': {e}"));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let (kind, arg) = split_spec(spec);
    let k = arg.unwrap_or(2) as usize;
    Ok(match kind {
        "tree" => generators::random_tree(n, &mut rng),
        "forest" => generators::random_forest(n, 0.8, &mut rng),
        "ktree" => generators::k_tree(n.max(k + 1), k, &mut rng),
        "kdeg" => generators::k_degenerate(n, k, true, &mut rng),
        "mixed" => generators::mixed_low_high(n, k, &mut rng),
        "gnp" => generators::gnp(n, arg.unwrap_or(4) as f64 / n.max(2) as f64, &mut rng),
        "gnp-lin" => generators::gnp_linear(n, arg.unwrap_or(4) as f64, &mut rng),
        "kdeg-lin" => generators::k_degenerate_linear(n, k, &mut rng),
        "eob" => generators::even_odd_bipartite_connected(n, 0.2, &mut rng),
        "bipartite" => generators::bipartite_fixed(n / 2, n - n / 2, 0.2, &mut rng),
        "two-cliques" => generators::two_cliques(n / 2),
        "impostor" => generators::connected_regular_impostor((n / 2).max(3), &mut rng),
        "clique" => generators::clique(n),
        "cycle" => generators::cycle(n.max(3)),
        "path" => generators::path(n),
        other => return Err(format!("unknown workload '{other}'")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wb_graph::checks;

    #[test]
    fn families_are_deterministic_per_seed() {
        for spec in ["tree", "kdeg:3", "gnp:4", "eob", "cycle", "path"] {
            let a = graph_family(spec, 24, 7).unwrap();
            let b = graph_family(spec, 24, 7).unwrap();
            assert_eq!(a, b, "{spec}");
        }
        let a = graph_family("gnp:4", 24, 7).unwrap();
        let c = graph_family("gnp:4", 24, 8).unwrap();
        assert_ne!(a, c, "different seeds give different instances");
    }

    #[test]
    fn families_have_expected_structure() {
        assert!(checks::degeneracy(&graph_family("tree", 30, 1).unwrap()).0 <= 1);
        assert!(checks::degeneracy(&graph_family("kdeg:2", 30, 1).unwrap()).0 <= 2);
        assert_eq!(
            checks::degeneracy(&graph_family("kdeg-lin:3", 200, 1).unwrap()).0,
            3
        );
        let sparse = graph_family("gnp-lin:4", 2_000, 1).unwrap();
        assert!(
            sparse.m() > 2_000 && sparse.m() < 6_000,
            "m = {}",
            sparse.m()
        );
        assert!(checks::is_even_odd_bipartite(
            &graph_family("eob", 20, 1).unwrap()
        ));
        assert!(checks::is_two_cliques(
            &graph_family("two-cliques", 12, 1).unwrap()
        ));
        assert_eq!(graph_family("clique", 6, 1).unwrap().m(), 15);
        assert_eq!(graph_family("path", 6, 1).unwrap().m(), 5);
    }

    #[test]
    fn unknown_family_is_an_error() {
        assert!(graph_family("frobnicate", 10, 1).is_err());
        assert!(graph_family("file:/nonexistent", 10, 1).is_err());
    }

    #[test]
    fn split_spec_parses_args() {
        assert_eq!(split_spec("gnp:8"), ("gnp", Some(8)));
        assert_eq!(split_spec("tree"), ("tree", None));
        assert_eq!(split_spec("gnp:x"), ("gnp", None));
    }
}
