//! Layer-certified BFS forests: EOB-BFS in `ASYNC[log n]` (Theorem 7), BFS on
//! arbitrary graphs in `SYNC[log n]` (Theorem 10), and BFS on bipartite graphs
//! in `ASYNC[log n]` (Corollary 4).
//!
//! All three share one node machine. A node's message is
//! `(ID, l, p, d₋₁, d₀, d₊₁)`: its BFS layer, its parent (min-ID neighbor in
//! the previous layer, `ROOT` for layer 0), its edge counts toward the
//! previous layer, within its layer (written-before-it only), and the rest of
//! its degree. Activation is driven by *edge-counting certificates* — a node
//! joins layer `t+1` only when the counts on the board prove layer `t` is
//! completely written:
//!
//! ```text
//! cert(t):      Σ_{L_t} d₋₁  =  Σ_{L_{t−1}} d₊₁  −  2·Σ_{L_{t−1}} d₀
//! settled(t):   Σ_{L_t} d₊₁  −  2·Σ_{L_t} d₀  =  Σ_{L_{t+1}} d₋₁
//! ```
//!
//! (the `d₀` terms vanish in the bipartite/EOB variants, recovering the
//! paper's Theorem 7 conditions). A component switch — the paper's condition
//! (c) — activates the minimum-ID unwritten node as a new root when the last
//! writer's layer is certified and settled.
//!
//! Two faithful completions of the paper's sketch, recorded in DESIGN.md:
//!
//! 1. **Global sums across components.** The paper's sums `Σ_{u∈L_k}` range
//!    over all written layer-`k` nodes; with several components those sums mix
//!    components. Because every *finished* component contributes equally to
//!    both sides of each certificate, the conditions above remain sound and
//!    live with the accumulated (global) sums; the literal condition
//!    `Σ_{L_{l(w)}} d₊₁ = 0` of Theorem 7 would deadlock on ≥3 components
//!    (an earlier component's last layer keeps a positive count).
//! 2. **Invalid-input draining (EOB only).** Nodes with a same-parity neighbor
//!    activate immediately and write `Invalid`; once any `Invalid` message is
//!    on the board every awake node activates and writes a 1-field `Skip`
//!    message, so the run still reaches a successful configuration and the
//!    output is `NotEvenOddBipartite`.

use crate::codec::{read_id, read_opt_id, write_id, write_opt_id};
use wb_graph::checks::BfsForest;
use wb_graph::NodeId;
use wb_math::{id_bits, BitReader, BitVec, BitWriter};
use wb_runtime::{LocalView, Model, Node, Protocol, Whiteboard};

/// Which of the three paper protocols this node machine is running.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Variant {
    /// Theorem 10: SYNC, arbitrary graphs, intra-layer `d₀` corrections.
    Sync,
    /// Corollary 4: ASYNC, bipartite graphs (no `d₀` terms).
    AsyncBipartite,
    /// Theorem 7: ASYNC, even-odd-bipartite graphs with invalid detection.
    Eob,
}

const TAG_NORMAL: u64 = 0;
const TAG_INVALID: u64 = 1;
const TAG_SKIP: u64 = 2;

/// Output of [`EobBfs`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BfsOutput {
    /// The input was even-odd-bipartite; here is its BFS forest.
    Forest(BfsForest),
    /// Some edge joins two identifiers of equal parity.
    NotEvenOddBipartite,
}

/// Per-node machine shared by the three variants.
#[derive(Clone)]
pub struct BfsNode {
    variant: Variant,
    /// Has a same-parity neighbor (EOB invalidity witness), set at spawn.
    parity_violation: bool,
    invalid_seen: bool,
    /// Written flags for all nodes (any tag).
    written: Vec<bool>,
    written_count: usize,
    /// Monotone cursor for min-unwritten queries.
    min_unwritten_cursor: usize,
    /// `(neighbor, layer)` for each written neighbor, in observation order.
    written_nbrs: Vec<(NodeId, u32)>,
    /// Global per-layer sums of the broadcast counts.
    sum_dminus: Vec<u64>,
    sum_d0: Vec<u64>,
    sum_dplus: Vec<u64>,
    /// Last `Normal` message's `(writer, layer)`.
    last_normal: Option<(NodeId, u32)>,
    board_len: usize,
}

impl BfsNode {
    fn new(variant: Variant, view: &LocalView) -> Self {
        let parity_violation =
            variant == Variant::Eob && view.neighbors.iter().any(|&w| w % 2 == view.id % 2);
        BfsNode {
            variant,
            parity_violation,
            invalid_seen: false,
            written: vec![false; view.n],
            written_count: 0,
            min_unwritten_cursor: 1,
            written_nbrs: Vec::new(),
            sum_dminus: Vec::new(),
            sum_d0: Vec::new(),
            sum_dplus: Vec::new(),
            last_normal: None,
            board_len: 0,
        }
    }

    fn layer_sum(v: &[u64], l: u32) -> u64 {
        v.get(l as usize).copied().unwrap_or(0)
    }

    fn d0_coeff(&self) -> u64 {
        match self.variant {
            Variant::Sync => 2,
            _ => 0,
        }
    }

    /// `cert(t)`: layer `t` is completely written (trivially true for t = 0,
    /// where both sides are 0 — roots announce d₋₁ = 0).
    fn cert(&self, t: u32) -> bool {
        let lhs = Self::layer_sum(&self.sum_dminus, t);
        let rhs = if t == 0 {
            0
        } else {
            Self::layer_sum(&self.sum_dplus, t - 1)
                - self.d0_coeff() * Self::layer_sum(&self.sum_d0, t - 1)
        };
        lhs == rhs
    }

    /// `settled(t)`: no unacknowledged edges leave layer `t`.
    fn settled(&self, t: u32) -> bool {
        let lhs = Self::layer_sum(&self.sum_dplus, t)
            - self.d0_coeff() * Self::layer_sum(&self.sum_d0, t);
        lhs == Self::layer_sum(&self.sum_dminus, t + 1)
    }

    fn min_unwritten(&mut self) -> Option<NodeId> {
        while self.min_unwritten_cursor <= self.written.len()
            && self.written[self.min_unwritten_cursor - 1]
        {
            self.min_unwritten_cursor += 1;
        }
        (self.min_unwritten_cursor <= self.written.len())
            .then_some(self.min_unwritten_cursor as NodeId)
    }

    /// The BFS fields of a `Normal` message, computed from the written
    /// neighbors known right now (activation time for ASYNC variants, write
    /// time for SYNC).
    fn bfs_fields(&self, view: &LocalView) -> (u32, Option<NodeId>, u64, u64, u64) {
        if self.written_nbrs.is_empty() {
            return (0, None, 0, 0, view.degree() as u64);
        }
        let l = self.written_nbrs.iter().map(|&(_, lw)| lw).min().unwrap() + 1;
        let dminus = self
            .written_nbrs
            .iter()
            .filter(|&&(_, lw)| lw == l - 1)
            .count() as u64;
        let d0 = self.written_nbrs.iter().filter(|&&(_, lw)| lw == l).count() as u64;
        let dplus = view.degree() as u64 - dminus;
        let parent = self
            .written_nbrs
            .iter()
            .filter(|&&(_, lw)| lw == l - 1)
            .map(|&(w, _)| w)
            .min();
        (l, parent, dminus, d0, dplus)
    }
}

impl Node for BfsNode {
    fn observe(&mut self, view: &LocalView, _seq: usize, _writer: NodeId, msg: &BitVec) {
        self.board_len += 1;
        let mut r = BitReader::new(msg);
        let tag = r.read_bits(2);
        let id = read_id(&mut r, view.n);
        if !self.written[id as usize - 1] {
            self.written[id as usize - 1] = true;
            self.written_count += 1;
        }
        match tag {
            TAG_INVALID => self.invalid_seen = true,
            TAG_SKIP => {}
            TAG_NORMAL => {
                let l = r.read_bits(id_bits(view.n)) as u32;
                let _parent = read_opt_id(&mut r, view.n);
                let dminus = r.read_bits(id_bits(view.n));
                let d0 = r.read_bits(id_bits(view.n));
                let dplus = r.read_bits(id_bits(view.n));
                let idx = l as usize;
                if self.sum_dminus.len() <= idx + 1 {
                    self.sum_dminus.resize(idx + 2, 0);
                    self.sum_d0.resize(idx + 2, 0);
                    self.sum_dplus.resize(idx + 2, 0);
                }
                self.sum_dminus[idx] += dminus;
                self.sum_d0[idx] += d0;
                self.sum_dplus[idx] += dplus;
                if view.is_neighbor(id) {
                    self.written_nbrs.push((id, l));
                }
                self.last_normal = Some((id, l));
            }
            _ => unreachable!("unknown tag"),
        }
    }

    fn wants_to_activate(&mut self, view: &LocalView) -> bool {
        // EOB invalidity: witnesses rise immediately; everyone else drains
        // once an Invalid message is on the board.
        if self.variant == Variant::Eob && (self.parity_violation || self.invalid_seen) {
            return true;
        }
        // "Initially, only v₁ is active."
        if self.board_len == 0 {
            return view.id == 1;
        }
        // (a) ∧ (b): a written neighbor whose layer is certified complete.
        if self.written_nbrs.iter().any(|&(_, lw)| self.cert(lw)) {
            return true;
        }
        // (c): component switch — last (Normal) writer w is a non-neighbor,
        // its layer is certified and settled, and v is the min-ID unwritten.
        if let Some((w, lw)) = self.last_normal {
            if !view.is_neighbor(w)
                && self.cert(lw)
                && self.settled(lw)
                && self.min_unwritten() == Some(view.id)
            {
                return true;
            }
        }
        false
    }

    fn compose(&mut self, view: &LocalView) -> BitVec {
        let mut w = BitWriter::new();
        if self.variant == Variant::Eob && self.parity_violation {
            w.write_bits(TAG_INVALID, 2);
            write_id(&mut w, view.id, view.n);
            return w.finish();
        }
        if self.variant == Variant::Eob && self.invalid_seen {
            w.write_bits(TAG_SKIP, 2);
            write_id(&mut w, view.id, view.n);
            return w.finish();
        }
        let (l, parent, dminus, d0, dplus) = self.bfs_fields(view);
        w.write_bits(TAG_NORMAL, 2);
        write_id(&mut w, view.id, view.n);
        w.write_bits(l as u64, id_bits(view.n));
        write_opt_id(&mut w, parent, view.n);
        w.write_bits(dminus, id_bits(view.n));
        w.write_bits(d0, id_bits(view.n));
        w.write_bits(dplus, id_bits(view.n));
        w.finish()
    }
}

fn bfs_budget_bits(n: usize) -> u32 {
    2 + 6 * id_bits(n)
}

fn decode_forest(n: usize, board: &Whiteboard) -> Option<BfsForest> {
    let mut layer = vec![0u32; n];
    let mut parent = vec![None; n];
    let mut roots = Vec::new();
    for e in board.entries() {
        let mut r = BitReader::new(&e.msg);
        let tag = r.read_bits(2);
        let id = read_id(&mut r, n);
        match tag {
            TAG_INVALID => return None,
            TAG_SKIP => {}
            _ => {
                let l = r.read_bits(id_bits(n)) as u32;
                let p = read_opt_id(&mut r, n);
                layer[id as usize - 1] = l;
                parent[id as usize - 1] = p;
                if p.is_none() {
                    roots.push(id);
                }
            }
        }
    }
    roots.sort_unstable();
    Some(BfsForest {
        layer,
        parent,
        roots,
    })
}

/// Theorem 10: BFS forests on **arbitrary** graphs in `SYNC[log n]`.
#[derive(Clone, Copy, Debug, Default)]
pub struct SyncBfs;

impl Protocol for SyncBfs {
    type Node = BfsNode;
    type Output = BfsForest;

    fn model(&self) -> Model {
        Model::Sync
    }

    fn budget_bits(&self, n: usize) -> u32 {
        bfs_budget_bits(n)
    }

    fn spawn(&self, view: &LocalView) -> BfsNode {
        BfsNode::new(Variant::Sync, view)
    }

    fn output(&self, n: usize, board: &Whiteboard) -> BfsForest {
        decode_forest(n, board).expect("SYNC BFS never emits Invalid")
    }
}

/// Corollary 4: BFS forests on **bipartite** graphs in `ASYNC[log n]`.
///
/// On non-bipartite inputs this protocol may deadlock — exactly the behavior
/// behind the paper's Open Problem 3 conjecture (BFS ∉ ASYNC); see the
/// `open_problem_3_ablation` test.
#[derive(Clone, Copy, Debug, Default)]
pub struct AsyncBipartiteBfs;

impl Protocol for AsyncBipartiteBfs {
    type Node = BfsNode;
    type Output = BfsForest;

    fn model(&self) -> Model {
        Model::Async
    }

    fn budget_bits(&self, n: usize) -> u32 {
        bfs_budget_bits(n)
    }

    fn spawn(&self, view: &LocalView) -> BfsNode {
        BfsNode::new(Variant::AsyncBipartite, view)
    }

    fn output(&self, n: usize, board: &Whiteboard) -> BfsForest {
        decode_forest(n, board).expect("bipartite BFS never emits Invalid")
    }
}

/// Theorem 7: EOB-BFS in `ASYNC[log n]` — BFS forest if the input is
/// even-odd-bipartite, `NotEvenOddBipartite` otherwise, never deadlocking.
#[derive(Clone, Copy, Debug, Default)]
pub struct EobBfs;

impl Protocol for EobBfs {
    type Node = BfsNode;
    type Output = BfsOutput;

    fn model(&self) -> Model {
        Model::Async
    }

    fn budget_bits(&self, n: usize) -> u32 {
        bfs_budget_bits(n)
    }

    fn spawn(&self, view: &LocalView) -> BfsNode {
        BfsNode::new(Variant::Eob, view)
    }

    fn output(&self, n: usize, board: &Whiteboard) -> BfsOutput {
        match decode_forest(n, board) {
            Some(f) => BfsOutput::Forest(f),
            None => BfsOutput::NotEvenOddBipartite,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wb_graph::{checks, enumerate, generators, Graph};
    use wb_runtime::exhaustive::{assert_explored, for_each_schedule, ExploreConfig};
    use wb_runtime::{run, MaxIdAdversary, MinIdAdversary, Outcome, RandomAdversary};

    fn assert_forest(g: &Graph, f: &BfsForest) {
        assert_eq!(f, &checks::bfs_forest(g), "forest mismatch on {g:?}");
    }

    #[test]
    fn sync_bfs_exhaustive_all_graphs_n4() {
        // Every labeled graph on 4 nodes × every adversary schedule: the
        // output must equal the canonical min-ID-rooted BFS forest and no
        // schedule may deadlock (Theorem 10 is promise-free).
        for g in enumerate::all_graphs(4) {
            assert_explored(&SyncBfs, &g, &ExploreConfig::default(), |f| {
                *f == checks::bfs_forest(&g)
            });
        }
    }

    #[test]
    fn sync_bfs_exhaustive_connected_n5() {
        for g in enumerate::all_connected_graphs(5) {
            assert_explored(&SyncBfs, &g, &ExploreConfig::default(), |f| {
                *f == checks::bfs_forest(&g)
            });
        }
    }

    #[test]
    fn sync_bfs_random_graphs() {
        let mut rng = StdRng::seed_from_u64(41);
        for trial in 0..25 {
            let g = generators::gnp(35, 0.12, &mut rng);
            for seed in 0..3 {
                let report = run(&SyncBfs, &g, &mut RandomAdversary::new(seed * 100 + trial));
                match &report.outcome {
                    Outcome::Success(f) => assert_forest(&g, f),
                    other => panic!("deadlock on {g:?}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn sync_bfs_odd_cycles_and_cliques() {
        for g in [
            generators::cycle(7),
            generators::clique(6),
            generators::cycle(5),
        ] {
            let report = run(&SyncBfs, &g, &mut MaxIdAdversary);
            assert_forest(&g, &report.outcome.unwrap());
        }
    }

    #[test]
    fn sync_bfs_many_components_with_isolated_nodes() {
        // Three components including two isolated nodes: exercises the
        // component-switch condition (c) repeatedly.
        let mut g = generators::path(4);
        g = g.disjoint_union(&generators::cycle(5));
        g = g.disjoint_union(&Graph::empty(2));
        assert_explored(&SyncBfs, &g, &ExploreConfig::default(), |f| {
            *f == checks::bfs_forest(&g)
        });
    }

    #[test]
    fn async_bipartite_bfs_on_bipartite_graphs() {
        let mut rng = StdRng::seed_from_u64(43);
        for trial in 0..20 {
            let g = generators::bipartite_fixed(12, 9, 0.2, &mut rng);
            for seed in 0..3 {
                let report = run(
                    &AsyncBipartiteBfs,
                    &g,
                    &mut RandomAdversary::new(seed + trial),
                );
                match &report.outcome {
                    Outcome::Success(f) => assert_forest(&g, f),
                    other => panic!("deadlock on bipartite {g:?}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn async_bipartite_exhaustive_small() {
        for g in [
            generators::path(5),
            generators::star(5),
            Graph::from_edges(6, &[(1, 4), (4, 2), (2, 5), (5, 3), (3, 6)]),
            Graph::from_edges(5, &[(1, 2), (3, 4)]),
        ] {
            assert!(checks::is_bipartite(&g));
            assert_explored(&AsyncBipartiteBfs, &g, &ExploreConfig::default(), |f| {
                *f == checks::bfs_forest(&g)
            });
        }
    }

    #[test]
    fn open_problem_3_ablation_frozen_messages_fail_without_d0() {
        // Evidence for Open Problem 3 (BFS ∉ PASYNC conjecture): run the
        // asynchronous (freeze-at-activation, no d₀) BFS on a graph with an
        // intra-layer edge *above* a deeper layer — a triangle {1,2,3} with
        // tail 3−4−5. Layer 1 = {2,3} contains the edge {2,3}, so
        // Σ d₊₁ over layer 1 overcounts by 2 and cert(2) never fires: node 5
        // can never be activated and every schedule deadlocks. The SYNC
        // variant's write-time d₀ correction repairs exactly this.
        let g = Graph::from_edges(5, &[(1, 2), (2, 3), (1, 3), (3, 4), (4, 5)]);
        let mut deadlocks = 0u32;
        let mut total = 0u32;
        let walk = for_each_schedule(&AsyncBipartiteBfs, &g, 10_000, |report| {
            total += 1;
            if let Outcome::Deadlock { awake } = &report.outcome {
                assert!(awake.contains(&5), "node 5 must be stuck: {awake:?}");
                deadlocks += 1;
            }
        });
        assert!(!walk.truncated, "the universal claim needs every schedule");
        assert_eq!(deadlocks, total, "every async schedule must deadlock");
        assert!(total > 0);
        // The same graph under the SYNC protocol succeeds on every schedule.
        assert_explored(&SyncBfs, &g, &ExploreConfig::default(), |f| {
            *f == checks::bfs_forest(&g)
        });
        let sync_report = run(&SyncBfs, &g, &mut MinIdAdversary);
        assert_forest(&g, &sync_report.outcome.unwrap());
    }

    #[test]
    fn eob_bfs_accepts_valid_inputs_exhaustively() {
        for g in [
            generators::path(5), // parity-alternating path
            Graph::from_edges(6, &[(1, 2), (2, 3), (3, 4), (4, 5), (5, 6)]),
            Graph::from_edges(5, &[(1, 2), (2, 5), (3, 4)]), // two components
        ] {
            assert!(checks::is_even_odd_bipartite(&g));
            assert_explored(&EobBfs, &g, &ExploreConfig::default(), |out| {
                *out == BfsOutput::Forest(checks::bfs_forest(&g))
            });
        }
    }

    #[test]
    fn eob_bfs_exhaustive_over_all_graphs_n4() {
        // Totality on every 4-node graph: valid EOB inputs yield the
        // reference forest, invalid ones the verdict; no schedule deadlocks.
        for g in enumerate::all_graphs(4) {
            let valid = checks::is_even_odd_bipartite(&g);
            assert_explored(&EobBfs, &g, &ExploreConfig::default(), |out| match out {
                BfsOutput::Forest(f) => valid && *f == checks::bfs_forest(&g),
                BfsOutput::NotEvenOddBipartite => !valid,
            });
        }
    }

    #[test]
    fn eob_bfs_random_connected_instances() {
        let mut rng = StdRng::seed_from_u64(47);
        for n in [10usize, 21, 40] {
            let g = generators::even_odd_bipartite_connected(n, 0.3, &mut rng);
            for seed in 0..5 {
                let report = run(&EobBfs, &g, &mut RandomAdversary::new(seed));
                match report.outcome {
                    Outcome::Success(BfsOutput::Forest(f)) => assert_forest(&g, &f),
                    other => panic!("n={n}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn eob_bfs_rejects_invalid_inputs_without_deadlock() {
        // Same-parity edges: every schedule must terminate successfully with
        // the NotEvenOddBipartite verdict.
        for g in [
            Graph::from_edges(4, &[(1, 3)]),
            Graph::from_edges(5, &[(1, 2), (2, 3), (3, 5)]),
            generators::clique(4),
        ] {
            assert!(!checks::is_even_odd_bipartite(&g));
            assert_explored(&EobBfs, &g, &ExploreConfig::default(), |out| {
                *out == BfsOutput::NotEvenOddBipartite
            });
        }
    }

    #[test]
    fn eob_bfs_large_random_invalid() {
        let mut rng = StdRng::seed_from_u64(53);
        let mut g = generators::even_odd_bipartite_connected(30, 0.2, &mut rng);
        g.add_edge(3, 7); // plant one odd-odd edge
        for seed in 0..5 {
            let report = run(&EobBfs, &g, &mut RandomAdversary::new(seed));
            assert_eq!(
                report.outcome,
                Outcome::Success(BfsOutput::NotEvenOddBipartite)
            );
        }
    }

    #[test]
    fn message_budget_is_logarithmic() {
        let mut rng = StdRng::seed_from_u64(59);
        let g = generators::even_odd_bipartite_connected(200, 0.05, &mut rng);
        let report = run(&EobBfs, &g, &mut RandomAdversary::new(0));
        assert!(report.outcome.is_success());
        assert_eq!(report.max_message_bits(), bfs_budget_bits(200) as usize);
        assert_eq!(report.max_message_bits(), 2 + 6 * 8);
    }

    #[test]
    fn single_node_and_edgeless_graphs() {
        for n in [1usize, 2, 4] {
            let g = Graph::empty(n);
            assert_explored(&SyncBfs, &g, &ExploreConfig::default(), |f| {
                *f == checks::bfs_forest(&g)
            });
            assert_explored(&EobBfs, &g, &ExploreConfig::default(), |out| {
                *out == BfsOutput::Forest(checks::bfs_forest(&g))
            });
        }
    }

    #[test]
    fn write_order_respects_layers_in_sync_bfs() {
        // Within one component, a node's write must come after its parent.
        let mut rng = StdRng::seed_from_u64(61);
        let g = generators::gnp(25, 0.15, &mut rng);
        let report = run(&SyncBfs, &g, &mut RandomAdversary::new(11));
        let f = match &report.outcome {
            Outcome::Success(f) => f.clone(),
            other => panic!("{other:?}"),
        };
        let pos: std::collections::HashMap<NodeId, usize> = report
            .write_order
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i))
            .collect();
        for v in 1..=g.n() as NodeId {
            if let Some(p) = f.parent[v as usize - 1] {
                assert!(pos[&p] < pos[&v], "parent {p} wrote after child {v}");
            }
        }
    }
}
