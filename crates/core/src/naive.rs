//! The Θ(n)-bit baseline the paper's introduction dismisses: "if every node
//! communicates its whole neighborhood (which can be done with O(n) bits),
//! the whole graph is described on the whiteboard".
//!
//! `NaiveBuild` writes each node's full adjacency row. It solves BUILD on
//! *every* graph in the weakest model, at message size `n` — the benchmark
//! comparison point (E13) against which the `O(k² log n)` degeneracy protocol
//! is measured.

use crate::codec::{read_id, write_id};
use wb_graph::{Graph, NodeId};
use wb_math::{id_bits, BitReader, BitVec, BitWriter};
use wb_runtime::{LocalView, Model, Node, Protocol, Whiteboard};

/// BUILD with whole-neighborhood messages (`SIMASYNC[n]`).
#[derive(Clone, Copy, Debug, Default)]
pub struct NaiveBuild;

/// Stateless SIMASYNC node.
#[derive(Clone)]
pub struct NaiveNode;

impl Node for NaiveNode {
    fn observe(&mut self, _v: &LocalView, _s: usize, _w: NodeId, _m: &BitVec) {
        unreachable!("SIMASYNC nodes are never shown the board");
    }

    fn compose(&mut self, view: &LocalView) -> BitVec {
        let mut w = BitWriter::new();
        write_id(&mut w, view.id, view.n);
        for u in 1..=view.n as NodeId {
            w.write_bool(view.is_neighbor(u));
        }
        w.finish()
    }
}

impl Protocol for NaiveBuild {
    type Node = NaiveNode;
    type Output = Graph;

    fn model(&self) -> Model {
        Model::SimAsync
    }

    fn budget_bits(&self, n: usize) -> u32 {
        id_bits(n) + n as u32
    }

    fn spawn(&self, _view: &LocalView) -> NaiveNode {
        NaiveNode
    }

    fn output(&self, n: usize, board: &Whiteboard) -> Graph {
        let mut g = Graph::empty(n);
        for e in board.entries() {
            let mut r = BitReader::new(&e.msg);
            let id = read_id(&mut r, n);
            for u in 1..=n as NodeId {
                if r.read_bool() && u != id {
                    g.add_edge(id, u);
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wb_graph::generators;
    use wb_runtime::exhaustive::{assert_explored, ExploreConfig};
    use wb_runtime::{run, Outcome, RandomAdversary};

    #[test]
    fn rebuilds_arbitrary_graphs() {
        let mut rng = StdRng::seed_from_u64(71);
        for n in [1usize, 2, 8, 40] {
            for p in [0.0, 0.3, 1.0] {
                let g = generators::gnp(n, p, &mut rng);
                let report = run(&NaiveBuild, &g, &mut RandomAdversary::new(n as u64));
                match report.outcome {
                    Outcome::Success(h) => assert_eq!(h, g),
                    other => panic!("{other:?}"),
                }
            }
        }
    }

    #[test]
    fn schedule_independent() {
        let g = generators::clique(4);
        assert_explored(&NaiveBuild, &g, &ExploreConfig::default(), |h| *h == g);
    }

    #[test]
    fn message_size_is_linear() {
        let g = generators::gnp(64, 0.5, &mut StdRng::seed_from_u64(3));
        let report = run(&NaiveBuild, &g, &mut RandomAdversary::new(0));
        assert_eq!(report.max_message_bits(), 64 + id_bits(64) as usize);
    }
}
