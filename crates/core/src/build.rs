//! BUILD for bounded-degeneracy graphs in `SIMASYNC[log n]` (§3, Theorem 2).
//!
//! Every node writes, with no communication whatsoever, the `(k+2)`-tuple
//!
//! ```text
//! ( ID(v),  d_G(v),  Σ_{w∈N(v)} ID(w)^1, …, Σ_{w∈N(v)} ID(w)^k )
//! ```
//!
//! — `O(k² log n)` bits by Lemma 1. The output function (Algorithm 1)
//! repeatedly *prunes* a node of current degree ≤ k: by Wright's theorem its
//! power sums identify its remaining neighborhood exactly; the decoded edges
//! are recorded and subtracted from the neighbors' tuples. If the pruning ever
//! stalls (no node of degree ≤ k remains) the input was not `k`-degenerate and
//! the protocol **rejects** — the recognition variant noted after Theorem 2.
//!
//! With `k = 1` this is precisely the forest protocol of §3.1 (the triple
//! `(ID, degree, Σ neighbor IDs)`).

use crate::codec::{read_id, write_id};
use wb_graph::{Graph, NodeId};
use wb_math::powersum::{self, NewtonDecoder};
use wb_math::{id_bits, BigInt, BitReader, BitVec, BitWriter};
use wb_runtime::{LocalView, Model, Node, Protocol, Whiteboard};

/// Rejection reasons for the recognition variant of BUILD.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// The pruning process stalled: some remaining node set has minimum degree
    /// above `k`, i.e. the input has a `(k+1)`-core and is not `k`-degenerate.
    NotKDegenerate,
    /// A power-sum vector failed to decode into a valid neighbor set — the
    /// board is not the image of any graph consistent with the claimed
    /// degrees (cannot happen for honest executions; kept for defense in
    /// depth of the output function).
    Undecodable {
        /// The node whose tuple failed to decode.
        node: NodeId,
    },
}

/// The §3.2 protocol: BUILD on graphs of degeneracy ≤ `k`.
///
/// ```
/// use wb_core::BuildDegenerate;
/// use wb_graph::generators;
/// use wb_runtime::{run, Outcome, RandomAdversary};
///
/// let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
/// let g = generators::k_tree(40, 3, &mut rng); // treewidth 3 ⇒ degeneracy 3
/// let report = run(&BuildDegenerate::new(3), &g, &mut RandomAdversary::new(2));
/// assert_eq!(report.outcome, Outcome::Success(Ok(g)));
/// ```
#[derive(Clone, Debug)]
pub struct BuildDegenerate {
    k: usize,
}

impl BuildDegenerate {
    /// Protocol for degeneracy bound `k ≥ 1`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "degeneracy bound must be ≥ 1");
        BuildDegenerate { k }
    }

    /// The forest protocol of §3.1 (`k = 1`).
    pub fn forests() -> Self {
        Self::new(1)
    }

    /// The degeneracy bound.
    pub fn k(&self) -> usize {
        self.k
    }

    fn degree_bits(n: usize) -> u32 {
        id_bits(n) // degrees are ≤ n−1
    }
}

/// Per-node state: `SIMASYNC` nodes never observe, so there is none.
#[derive(Clone)]
pub struct BuildNode {
    k: usize,
}

impl Node for BuildNode {
    fn observe(&mut self, _v: &LocalView, _s: usize, _w: NodeId, _m: &BitVec) {
        unreachable!("SIMASYNC nodes are never shown the board");
    }

    fn compose(&mut self, view: &LocalView) -> BitVec {
        let mut w = BitWriter::new();
        write_id(&mut w, view.id, view.n);
        w.write_bits(view.degree() as u64, BuildDegenerate::degree_bits(view.n));
        let sums = powersum::power_sums(&view.neighbors, self.k);
        for (idx, s) in sums.iter().enumerate() {
            let p = idx as u32 + 1;
            w.write_big(s, powersum::power_sum_field_bits(view.n, p));
        }
        w.finish()
    }
}

/// One decoded whiteboard tuple during pruning.
struct Tuple {
    degree: usize,
    sums: Vec<BigInt>,
    alive: bool,
}

impl Protocol for BuildDegenerate {
    type Node = BuildNode;
    type Output = Result<Graph, BuildError>;

    fn model(&self) -> Model {
        Model::SimAsync
    }

    fn budget_bits(&self, n: usize) -> u32 {
        id_bits(n) + Self::degree_bits(n) + powersum::power_sum_vector_bits(n, self.k)
    }

    fn spawn(&self, _view: &LocalView) -> BuildNode {
        BuildNode { k: self.k }
    }

    /// Algorithm 1, with the Newton decoder in place of the `O(n^k)` lookup
    /// table (Lemma 2's "unlimited computational power" made practical).
    fn output(&self, n: usize, board: &Whiteboard) -> Self::Output {
        let mut tuples: Vec<Option<Tuple>> = (0..n).map(|_| None).collect();
        for entry in board.entries() {
            let mut r = BitReader::new(&entry.msg);
            let id = read_id(&mut r, n);
            let degree = r.read_bits(Self::degree_bits(n)) as usize;
            let sums: Vec<BigInt> = (1..=self.k as u32)
                .map(|p| r.read_big(powersum::power_sum_field_bits(n, p)))
                .collect();
            tuples[id as usize - 1] = Some(Tuple {
                degree,
                sums,
                alive: true,
            });
        }
        // A slot left `None` is a crashed writer (its single write died
        // before reaching the board). The peel below runs over the present
        // tuples only; a crashed node's incident edges are still recovered
        // from its surviving neighbors' power sums, so the reconstruction
        // degrades to a graph between `g[survivors]` and `g` — or to a
        // robust rejection when the surviving evidence no longer peels.
        let present = tuples.iter().filter(|t| t.is_some()).count();

        let decoder = NewtonDecoder::new(n);
        let mut g = Graph::empty(n);
        // Worklist of candidate low-degree nodes; stale entries are re-checked
        // on pop, so pushing duplicates is harmless.
        let mut stack: Vec<usize> = (0..n)
            .filter(|&i| tuples[i].as_ref().is_some_and(|t| t.degree <= self.k))
            .collect();
        let mut remaining = present;
        while remaining > 0 {
            let x = loop {
                match stack.pop() {
                    Some(i)
                        if tuples[i]
                            .as_ref()
                            .is_some_and(|t| t.alive && t.degree <= self.k) =>
                    {
                        break i
                    }
                    Some(_) => continue,
                    None => return Err(BuildError::NotKDegenerate),
                }
            };
            let id_x = x as NodeId + 1;
            let (degree_x, sums_x) = {
                let t = tuples[x].as_ref().expect("worklist holds present nodes");
                (t.degree, t.sums.clone())
            };
            let neighbors = decoder
                .decode(&sums_x, degree_x)
                .ok_or(BuildError::Undecodable { node: id_x })?;
            for &u in &neighbors {
                let ui = u as usize - 1;
                if u == id_x {
                    return Err(BuildError::Undecodable { node: id_x });
                }
                let Some(tu) = tuples[ui].as_mut() else {
                    // The neighbor's write died: the edge survives in x's
                    // sums, but there is no tuple left to peel it from.
                    g.add_edge(id_x, u);
                    continue;
                };
                if !tu.alive || tu.degree == 0 {
                    return Err(BuildError::Undecodable { node: id_x });
                }
                g.add_edge(id_x, u);
                tu.degree -= 1;
                powersum::remove_neighbor(&mut tu.sums, id_x);
                if tu.degree <= self.k {
                    stack.push(ui);
                }
            }
            tuples[x]
                .as_mut()
                .expect("worklist holds present nodes")
                .alive = false;
            remaining -= 1;
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wb_graph::generators;
    use wb_runtime::exhaustive::{assert_explored, ExploreConfig};
    use wb_runtime::{run, MinIdAdversary, Outcome, RandomAdversary};

    fn reconstructs(k: usize, g: &Graph, seed: u64) {
        let p = BuildDegenerate::new(k);
        let report = run(&p, g, &mut RandomAdversary::new(seed));
        match report.outcome {
            Outcome::Success(Ok(h)) => assert_eq!(&h, g),
            other => panic!("expected reconstruction, got {other:?}"),
        }
    }

    #[test]
    fn rebuilds_forests_with_k1() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [1usize, 2, 3, 10, 40, 120] {
            let t = generators::random_tree(n, &mut rng);
            reconstructs(1, &t, n as u64);
            let f = generators::random_forest(n, 0.5, &mut rng);
            reconstructs(1, &f, n as u64 + 1);
        }
    }

    #[test]
    fn rebuilds_k_trees() {
        let mut rng = StdRng::seed_from_u64(13);
        for k in 1..=4 {
            let g = generators::k_tree(25, k, &mut rng);
            reconstructs(k, &g, k as u64);
        }
    }

    #[test]
    fn rebuilds_random_degenerate_graphs() {
        let mut rng = StdRng::seed_from_u64(17);
        for k in 1..=5 {
            for trial in 0..4 {
                let g = generators::k_degenerate(30, k, trial % 2 == 0, &mut rng);
                reconstructs(k, &g, trial);
            }
        }
    }

    #[test]
    fn higher_k_protocol_still_rebuilds_sparser_graphs() {
        let mut rng = StdRng::seed_from_u64(19);
        let t = generators::random_tree(20, &mut rng);
        reconstructs(3, &t, 0); // degeneracy 1 input under a k = 3 protocol
    }

    #[test]
    fn rejects_graphs_above_the_bound() {
        // K_{k+2} has degeneracy k+1: a k-protocol must reject it.
        for k in 1..=3 {
            let g = generators::clique(k + 2);
            let p = BuildDegenerate::new(k);
            let report = run(&p, &g, &mut MinIdAdversary);
            assert_eq!(
                report.outcome,
                Outcome::Success(Err(BuildError::NotKDegenerate)),
                "k={k}"
            );
        }
    }

    #[test]
    fn rejects_cycle_with_k1() {
        let p = BuildDegenerate::forests();
        let g = generators::cycle(6);
        let report = run(&p, &g, &mut MinIdAdversary);
        assert_eq!(
            report.outcome,
            Outcome::Success(Err(BuildError::NotKDegenerate))
        );
    }

    #[test]
    fn accepts_mixed_low_degeneracy_components() {
        // Forest + isolated nodes + a 4-cycle: degeneracy 2.
        let mut g = generators::random_tree(6, &mut StdRng::seed_from_u64(23));
        g = g.disjoint_union(&generators::cycle(4));
        g = g.disjoint_union(&Graph::empty(3));
        reconstructs(2, &g, 5);
    }

    #[test]
    fn output_is_schedule_independent_exhaustively() {
        // SIMASYNC messages do not depend on the order, but the output
        // function must also be order-oblivious: check every schedule.
        let g = Graph::from_edges(5, &[(1, 2), (2, 3), (3, 4), (4, 5), (5, 1)]);
        let p = BuildDegenerate::new(2);
        assert_explored(&p, &g, &ExploreConfig::default(), |out| {
            out.as_ref() == Ok(&g)
        });
    }

    #[test]
    fn message_sizes_match_lemma_1() {
        let mut rng = StdRng::seed_from_u64(29);
        for (n, k) in [(50usize, 2usize), (200, 3), (500, 5)] {
            let g = generators::k_degenerate(n, k, true, &mut rng);
            let p = BuildDegenerate::new(k);
            let report = run(&p, &g, &mut RandomAdversary::new(1));
            let bound = (k * (k + 1) * id_bits(n) as usize) + 2 * id_bits(n) as usize;
            assert!(
                report.max_message_bits() <= bound,
                "n={n} k={k}: {} > {bound}",
                report.max_message_bits()
            );
            assert!(report.outcome.is_success());
        }
    }

    #[test]
    fn single_node_and_empty_graphs() {
        reconstructs(1, &Graph::empty(1), 0);
        reconstructs(2, &Graph::empty(7), 0);
    }

    #[test]
    fn planar_like_degeneracy_5_inputs() {
        // Planar graphs have degeneracy ≤ 5; our 5-degenerate generator
        // exercises the same bound the paper cites for planar BUILD.
        let mut rng = StdRng::seed_from_u64(31);
        let g = generators::k_degenerate(40, 5, true, &mut rng);
        reconstructs(5, &g, 9);
    }
}
