//! CONNECTIVITY in `SYNC[log n]` — the §6 corollary of Theorem 10.
//!
//! "One of the main questions in distributed environments concerns
//! connectivity." Open Problem 2 asks whether SPANNING-TREE or CONNECTIVITY
//! is solvable in `ASYNC[f(n)]`; in `SYNC[log n]` both follow from the BFS
//! protocol: the forest has one root per connected component, and roots are
//! visible on the board (messages with `p = ROOT`). This module is that
//! corollary, plus the component count and membership map as richer outputs.

use crate::bfs::{BfsNode, SyncBfs};
use wb_graph::NodeId;
use wb_runtime::{LocalView, Model, Protocol, Whiteboard};

/// Connectivity report derived from the final whiteboard.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConnectivityReport {
    /// Whether the graph is connected (exactly one component root).
    pub connected: bool,
    /// Number of connected components.
    pub components: usize,
    /// For each node, the root (minimum ID) of its component.
    pub component_of: Vec<NodeId>,
}

/// CONNECTIVITY (and component structure) in `SYNC[log n]`.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConnectivitySync;

impl Protocol for ConnectivitySync {
    type Node = BfsNode;
    type Output = ConnectivityReport;

    fn model(&self) -> Model {
        Model::Sync
    }

    fn budget_bits(&self, n: usize) -> u32 {
        SyncBfs.budget_bits(n)
    }

    fn spawn(&self, view: &LocalView) -> Self::Node {
        SyncBfs.spawn(view)
    }

    fn output(&self, n: usize, board: &Whiteboard) -> ConnectivityReport {
        let forest = SyncBfs.output(n, board);
        let mut component_of: Vec<NodeId> = vec![0; n];
        for v in 1..=n as NodeId {
            // Walk parents to the root; paths are ≤ n long.
            let mut cur = v;
            while let Some(p) = forest.parent[cur as usize - 1] {
                cur = p;
            }
            component_of[v as usize - 1] = cur;
        }
        ConnectivityReport {
            connected: forest.roots.len() <= 1,
            components: forest.roots.len(),
            component_of,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wb_graph::{checks, generators, Graph};
    use wb_runtime::exhaustive::{assert_explored, ExploreConfig};
    use wb_runtime::{run, Outcome, RandomAdversary};

    #[test]
    fn connectivity_matches_oracle_exhaustively() {
        for g in wb_graph::enumerate::all_graphs(4) {
            assert_explored(&ConnectivitySync, &g, &ExploreConfig::default(), |rep| {
                rep.connected == checks::is_connected(&g)
                    && rep.components == checks::components(&g).len()
            });
        }
    }

    #[test]
    fn component_map_matches_reference() {
        let mut rng = StdRng::seed_from_u64(5);
        for trial in 0..10 {
            let g = generators::gnp(30, 0.05, &mut rng);
            let report = run(&ConnectivitySync, &g, &mut RandomAdversary::new(trial));
            let rep = match report.outcome {
                Outcome::Success(rep) => rep,
                other => panic!("{other:?}"),
            };
            for comp in checks::components(&g) {
                let root = comp[0];
                for &v in &comp {
                    assert_eq!(rep.component_of[v as usize - 1], root);
                }
            }
        }
    }

    #[test]
    fn the_two_cliques_connection() {
        // §5.1: within the (n−1)-regular 2n-node promise, CONNECTIVITY and
        // 2-CLIQUES are the same question; the SYNC answer agrees with the
        // SIMSYNC 2-CLIQUES protocol.
        use crate::two_cliques::{TwoCliques, TwoCliquesVerdict};
        let mut rng = StdRng::seed_from_u64(6);
        for g in [
            generators::two_cliques(6),
            generators::connected_regular_impostor(6, &mut rng),
        ] {
            let conn = run(&ConnectivitySync, &g, &mut RandomAdversary::new(1))
                .outcome
                .unwrap();
            let tc = run(&TwoCliques, &g, &mut RandomAdversary::new(1))
                .outcome
                .unwrap();
            assert_eq!(tc == TwoCliquesVerdict::TwoCliques, !conn.connected);
        }
    }

    #[test]
    fn edgeless_graph_has_n_components() {
        let g = Graph::empty(6);
        let rep = run(&ConnectivitySync, &g, &mut RandomAdversary::new(2))
            .outcome
            .unwrap();
        assert!(!rep.connected);
        assert_eq!(rep.components, 6);
        assert_eq!(rep.component_of, vec![1, 2, 3, 4, 5, 6]);
    }
}
