//! The §1 hard problems: SQUARE ("does G contain a C₄?") and DIAMETER ≤ 3.
//!
//! "Questions like 'Does G contain a square?' or 'Is the diameter of G at
//! most 3?' cannot be solved by a protocol using o(n) bits" — results of the
//! IPDPS 2011 companion paper \[2\], quoted in §1 and §4 of the journal text.
//! As with TRIANGLE, we ship the two provable brackets:
//!
//! - the trivial `SIMASYNC[n]` upper bounds (full adjacency rows, then the
//!   referee answers from the reconstruction), matching the Ω(n) lower
//!   bounds; and
//! - `SIMASYNC[k² log n]` versions restricted to bounded-degeneracy inputs
//!   via BUILD (Theorem 2) — the paper's positive reconstruction results make
//!   *every* graph property decidable on those classes.

use crate::build::{BuildDegenerate, BuildError};
use crate::naive::NaiveBuild;
use wb_graph::checks;
use wb_runtime::{LocalView, Model, Protocol, Whiteboard};

/// SQUARE (C₄ detection) with Θ(n)-bit messages.
#[derive(Clone, Copy, Debug, Default)]
pub struct SquareFullRow;

impl Protocol for SquareFullRow {
    type Node = crate::naive::NaiveNode;
    type Output = bool;

    fn model(&self) -> Model {
        Model::SimAsync
    }

    fn budget_bits(&self, n: usize) -> u32 {
        NaiveBuild.budget_bits(n)
    }

    fn spawn(&self, view: &LocalView) -> Self::Node {
        NaiveBuild.spawn(view)
    }

    fn output(&self, n: usize, board: &Whiteboard) -> bool {
        checks::has_square(&NaiveBuild.output(n, board))
    }
}

/// DIAMETER ≤ 3 with Θ(n)-bit messages (`false` also covers disconnected
/// inputs, whose diameter is infinite).
#[derive(Clone, Copy, Debug, Default)]
pub struct DiameterAtMost3FullRow;

impl Protocol for DiameterAtMost3FullRow {
    type Node = crate::naive::NaiveNode;
    type Output = bool;

    fn model(&self) -> Model {
        Model::SimAsync
    }

    fn budget_bits(&self, n: usize) -> u32 {
        NaiveBuild.budget_bits(n)
    }

    fn spawn(&self, view: &LocalView) -> Self::Node {
        NaiveBuild.spawn(view)
    }

    fn output(&self, n: usize, board: &Whiteboard) -> bool {
        matches!(checks::diameter(&NaiveBuild.output(n, board)), Some(d) if d <= 3)
    }
}

/// SQUARE on degeneracy-≤k inputs in `SIMASYNC[k² log n]`.
#[derive(Clone, Debug)]
pub struct SquareViaBuild {
    build: BuildDegenerate,
}

impl SquareViaBuild {
    /// Protocol for degeneracy bound `k`.
    pub fn new(k: usize) -> Self {
        SquareViaBuild {
            build: BuildDegenerate::new(k),
        }
    }
}

impl Protocol for SquareViaBuild {
    type Node = crate::build::BuildNode;
    type Output = Result<bool, BuildError>;

    fn model(&self) -> Model {
        Model::SimAsync
    }

    fn budget_bits(&self, n: usize) -> u32 {
        self.build.budget_bits(n)
    }

    fn spawn(&self, view: &LocalView) -> Self::Node {
        self.build.spawn(view)
    }

    fn output(&self, n: usize, board: &Whiteboard) -> Self::Output {
        self.build.output(n, board).map(|g| checks::has_square(&g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wb_graph::{enumerate, generators};
    use wb_runtime::{run, MinIdAdversary, Outcome, RandomAdversary};

    #[test]
    fn square_full_row_matches_oracle_exhaustively() {
        for g in enumerate::all_graphs(4) {
            let report = run(&SquareFullRow, &g, &mut MinIdAdversary);
            assert_eq!(report.outcome, Outcome::Success(checks::has_square(&g)));
        }
    }

    #[test]
    fn diameter_full_row_matches_oracle() {
        for g in enumerate::all_connected_graphs(5) {
            let report = run(&DiameterAtMost3FullRow, &g, &mut MinIdAdversary);
            let expected = checks::diameter(&g).map(|d| d <= 3).unwrap_or(false);
            assert_eq!(report.outcome, Outcome::Success(expected));
        }
    }

    #[test]
    fn diameter_disconnected_is_false() {
        let g = wb_graph::Graph::from_edges(4, &[(1, 2)]);
        let report = run(&DiameterAtMost3FullRow, &g, &mut MinIdAdversary);
        assert_eq!(report.outcome, Outcome::Success(false));
    }

    #[test]
    fn square_via_build_on_degenerate_graphs() {
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..8 {
            let g = generators::k_degenerate(20, 2, trial % 2 == 0, &mut rng);
            let p = SquareViaBuild::new(2);
            let report = run(&p, &g, &mut RandomAdversary::new(trial));
            assert_eq!(report.outcome, Outcome::Success(Ok(checks::has_square(&g))));
        }
    }

    #[test]
    fn square_via_build_rejects_dense_inputs() {
        let p = SquareViaBuild::new(1);
        let report = run(&p, &generators::clique(5), &mut MinIdAdversary);
        assert_eq!(
            report.outcome,
            Outcome::Success(Err(BuildError::NotKDegenerate))
        );
    }
}
