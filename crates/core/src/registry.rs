//! The **protocol registry**: one table from CLI-style protocol specs to
//! protocol values, correctness oracles, and tier support.
//!
//! Before this module existed, the protocol → oracle mapping was duplicated
//! across the CLI's `explore` and `campaign` commands, the campaign bench
//! bin, and the differential tests — four copies that could silently drift.
//! Now every tier resolves scenarios here:
//!
//! - [`dispatch`] drives the **step-engine tiers** (exhaustive exploration
//!   and Monte Carlo campaigns): it parses a spec like `"build:2"` or
//!   `"mis:3"`, constructs the protocol, and hands it to a caller-supplied
//!   [`ProtocolVisitor`] together with an oracle *binder* — a function that,
//!   given one instance graph, returns the outcome-correctness predicate for
//!   that instance (precomputing reference answers once per graph).
//! - [`dispatch_bulk`] does the same for the **bulk tier**
//!   ([`wb_runtime::bulk`]): every `SIMASYNC` protocol is wrapped in
//!   [`Oblivious`], and the observation-dependent `SIMSYNC` protocols (MIS,
//!   2-CLIQUES) use their columnar implementations from [`crate::bulk`].
//!   Both dispatchers share the same oracle binders, so the tiers cannot
//!   disagree about what "correct" means.
//! - [`PROTOCOLS`] is the static metadata table (spec syntax, native model,
//!   paper reference, bulk support) behind `whiteboard list` and
//!   `docs/PROTOCOLS.md`.
//!
//! Spec syntax is `name` or `name:ARG` (see [`crate::workload::split_spec`]);
//! the argument defaults match the historical CLI defaults.
//!
//! ```
//! use wb_core::registry::{self, BoundOracle, ProtocolVisitor};
//! use wb_graph::Graph;
//! use wb_runtime::{Model, Protocol};
//!
//! /// A visitor that just reports the resolved protocol's native model.
//! struct ModelOf;
//! impl ProtocolVisitor for ModelOf {
//!     type Result = Model;
//!     fn visit<P, B>(self, protocol: P, _bind: B) -> Model
//!     where
//!         P: Protocol + Clone + Send + Sync,
//!         P::Node: Send + Sync,
//!         P::Output: Clone + PartialEq + std::fmt::Debug + Send + Sync,
//!         B: for<'g> Fn(&'g Graph) -> BoundOracle<'g, P::Output> + Send + Sync,
//!     {
//!         protocol.model()
//!     }
//! }
//!
//! assert_eq!(registry::dispatch("mis:1", 8, ModelOf).unwrap(), Model::SimSync);
//! assert_eq!(registry::dispatch("bfs", 8, ModelOf).unwrap(), Model::Sync);
//! assert!(registry::dispatch("frobnicate", 8, ModelOf).is_err());
//! assert!(registry::PROTOCOLS.iter().any(|p| p.name == "two-cliques" && p.bulk));
//! ```

use crate::bfs::{AsyncBipartiteBfs, BfsOutput, EobBfs, SyncBfs};
use crate::build::{BuildDegenerate, BuildError};
use crate::build_mixed::BuildMixed;
use crate::connectivity::{ConnectivityReport, ConnectivitySync};
use crate::hard_problems::{DiameterAtMost3FullRow, SquareFullRow};
use crate::mis::MisGreedy;
use crate::naive::NaiveBuild;
use crate::spanning::{SpanningForest, SpanningForestSync};
use crate::statistics::{DegreeStats, DegreeSummary, EdgeCount};
use crate::subgraph::SubgraphPrefix;
use crate::triangle::TriangleFullRow;
use crate::two_cliques::{TwoCliques, TwoCliquesVerdict};
use crate::two_cliques_randomized::TwoCliquesRandomized;
use crate::workload::split_spec;
use wb_graph::{checks, Graph, NodeId};
use wb_runtime::bulk::Oblivious;
use wb_runtime::{BulkProtocol, Model, Outcome, Protocol};

/// An outcome-correctness predicate bound to one instance graph.
///
/// The second argument is the **crashed set**: the nodes whose single write
/// died under the run's [`wb_runtime::FaultPlan`], in crash order. Fault-free
/// runs pass `&[]` and get exactly the historical verdict; with casualties
/// the oracle judges the *degraded* guarantee instead — what the protocol
/// still owes when `f` writes are lost (e.g. BUILD degrades to reconstructing
/// a graph sandwiched between the surviving-node subgraph and the full graph;
/// MIS verdicts quantify only over live nodes). The per-protocol degraded
/// contracts are catalogued in `docs/FAULTS.md`.
pub type BoundOracle<'g, O> = Box<dyn Fn(&Outcome<O>, &[NodeId]) -> bool + Send + Sync + 'g>;

/// A caller-supplied action over a resolved step protocol.
///
/// [`dispatch`] calls `visit` exactly once, with the protocol value and the
/// oracle binder for the spec it parsed. Implementations run whichever tier
/// they represent: the CLI's `explore` visitor explores, the campaign
/// visitor samples, the differential test visitor cross-checks.
pub trait ProtocolVisitor {
    /// What the visit produces.
    type Result;

    /// Drive `protocol`; `bind(g)` yields the instance-bound oracle.
    fn visit<P, B>(self, protocol: P, bind: B) -> Self::Result
    where
        P: Protocol + Clone + Send + Sync,
        P::Node: Send + Sync,
        P::Output: Clone + PartialEq + std::fmt::Debug + Send + Sync,
        B: for<'g> Fn(&'g Graph) -> BoundOracle<'g, P::Output> + Send + Sync;
}

/// A caller-supplied action over a resolved bulk protocol (same shape as
/// [`ProtocolVisitor`], for the columnar tier).
pub trait BulkVisitor {
    /// What the visit produces.
    type Result;

    /// Drive `protocol`; `bind(g)` yields the instance-bound oracle.
    fn visit<P, B>(self, protocol: P, bind: B) -> Self::Result
    where
        P: BulkProtocol + Send + Sync,
        P::Output: Clone + PartialEq + std::fmt::Debug + Send + Sync,
        B: for<'g> Fn(&'g Graph) -> BoundOracle<'g, P::Output> + Send + Sync;
}

/// Metadata for one registry entry.
#[derive(Clone, Copy, Debug)]
pub struct ProtocolInfo {
    /// Spec key (`--protocol` name before any `:ARG`).
    pub name: &'static str,
    /// Display form of the spec, argument included.
    pub spec: &'static str,
    /// Native model.
    pub model: Model,
    /// Paper reference.
    pub paper: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// Whether [`dispatch_bulk`] can drive it (simultaneous-**native**
    /// protocols only; the bulk tier can then run them under any model that
    /// includes the native one).
    pub bulk: bool,
    /// Whether the oracle is expected to hold on **every** input graph.
    /// `false` only for the Open Problem 3 ablation protocol
    /// (`async-bipartite-bfs`), which deadlocks by design off the bipartite
    /// promise — all-graph differential sweeps skip its oracle assertion,
    /// and failure-injection pipelines rely on it failing.
    pub total: bool,
}

/// Every registered protocol, in `whiteboard list` order.
pub const PROTOCOLS: &[ProtocolInfo] = &[
    ProtocolInfo {
        name: "build",
        spec: "build:K",
        model: Model::SimAsync,
        paper: "§3, Thm 2",
        summary: "BUILD, degeneracy ≤ K",
        bulk: true,
        total: true,
    },
    ProtocolInfo {
        name: "build-mixed",
        spec: "build-mixed:K",
        model: Model::SimAsync,
        paper: "§3 closing remark",
        summary: "BUILD, low-or-high class",
        bulk: true,
        total: true,
    },
    ProtocolInfo {
        name: "naive",
        spec: "naive",
        model: Model::SimAsync,
        paper: "§1",
        summary: "BUILD, Θ(n)-bit baseline",
        bulk: true,
        total: true,
    },
    ProtocolInfo {
        name: "mis",
        spec: "mis:ROOT",
        model: Model::SimSync,
        paper: "Thm 5",
        summary: "rooted MIS",
        bulk: true,
        total: true,
    },
    ProtocolInfo {
        name: "bfs",
        spec: "bfs",
        model: Model::Sync,
        paper: "Thm 10",
        summary: "BFS forest, any graph",
        bulk: false,
        total: true,
    },
    ProtocolInfo {
        name: "eob-bfs",
        spec: "eob-bfs",
        model: Model::Async,
        paper: "Thm 7",
        summary: "BFS forest, even-odd bipartite",
        bulk: false,
        total: true,
    },
    ProtocolInfo {
        name: "async-bipartite-bfs",
        spec: "async-bipartite-bfs",
        model: Model::Async,
        paper: "Cor 4 / Open Pb 3",
        summary: "BFS, bipartite promise (deadlocks off it)",
        bulk: false,
        total: false,
    },
    ProtocolInfo {
        name: "spanning",
        spec: "spanning",
        model: Model::Sync,
        paper: "§6",
        summary: "spanning forest",
        bulk: false,
        total: true,
    },
    ProtocolInfo {
        name: "two-cliques",
        spec: "two-cliques",
        model: Model::SimSync,
        paper: "§5.1",
        summary: "2-CLIQUES",
        bulk: true,
        total: true,
    },
    ProtocolInfo {
        name: "two-cliques-rand",
        spec: "two-cliques-rand:SEED",
        model: Model::SimAsync,
        paper: "Open Pb 4",
        summary: "randomized 2-CLIQUES, one-sided error",
        bulk: true,
        total: true,
    },
    ProtocolInfo {
        name: "subgraph",
        spec: "subgraph:F",
        model: Model::SimAsync,
        paper: "Thm 9",
        summary: "SUBGRAPH_F prefix subgraph",
        bulk: true,
        total: true,
    },
    ProtocolInfo {
        name: "triangle",
        spec: "triangle",
        model: Model::SimAsync,
        paper: "Thm 3 context",
        summary: "TRIANGLE, Θ(n)-bit bracket",
        bulk: true,
        total: true,
    },
    ProtocolInfo {
        name: "square",
        spec: "square",
        model: Model::SimAsync,
        paper: "§1, §4",
        summary: "SQUARE, Θ(n)-bit bracket",
        bulk: true,
        total: true,
    },
    ProtocolInfo {
        name: "diameter3",
        spec: "diameter3",
        model: Model::SimAsync,
        paper: "§1, §4",
        summary: "DIAMETER ≤ 3, Θ(n)-bit bracket",
        bulk: true,
        total: true,
    },
    ProtocolInfo {
        name: "connectivity",
        spec: "connectivity",
        model: Model::Sync,
        paper: "§6 / Open Pb 2",
        summary: "CONNECTIVITY + components",
        bulk: false,
        total: true,
    },
    ProtocolInfo {
        name: "edge-count",
        spec: "edge-count",
        model: Model::SimAsync,
        paper: "§1 motivation",
        summary: "|E| from degrees",
        bulk: true,
        total: true,
    },
    ProtocolInfo {
        name: "degree-stats",
        spec: "degree-stats",
        model: Model::SimAsync,
        paper: "§1 motivation",
        summary: "degree-sequence statistics",
        bulk: true,
        total: true,
    },
];

/// Metadata for `name` (the spec key before any `:ARG`).
pub fn info(name: &str) -> Option<&'static ProtocolInfo> {
    PROTOCOLS.iter().find(|p| p.name == name)
}

/// The unknown-spec error both dispatchers raise.
fn unknown(kind: &str) -> String {
    format!("unknown protocol '{kind}' (see `whiteboard list`)")
}

// ---------------------------------------------------------------------------
// Oracle binders — ONE definition per protocol, shared by both dispatchers.
// Each binder precomputes the per-instance reference answer once, then
// returns the outcome predicate for that instance. Every oracle takes the
// crashed set as its second argument: with no casualties the historical
// fault-free verdict applies verbatim; with casualties the oracle switches
// to the protocol's *degraded* contract (see `docs/FAULTS.md`).
// ---------------------------------------------------------------------------

/// `true` iff `v`'s write reached the board (it is not in the crashed set).
fn live(v: NodeId, dead: &[NodeId]) -> bool {
    !dead.contains(&v)
}

/// The degraded reconstruction guarantee shared by the BUILD family: with
/// the `dead` nodes' writes lost, the output must still be sandwiched
/// between the surviving evidence and the truth — every claimed edge is
/// real (`h ⊆ g`), and every edge both of whose endpoints' writes survived
/// is recovered (`g[live] ⊆ h`).
fn reconstruction_sandwich(g: &Graph, h: &Graph, dead: &[NodeId]) -> bool {
    h.n() == g.n()
        && h.edges().all(|(u, v)| g.has_edge(u, v))
        && g.edges()
            .filter(|&(u, v)| live(u, dead) && live(v, dead))
            .all(|(u, v)| h.has_edge(u, v))
}

/// The degraded MIS contract: `set` is an independent set of survivors,
/// containing the root whenever the root's own write survived, and maximal
/// over the live nodes *except* in a dead root's neighborhood. (A crashed
/// non-root node is indistinguishable from one that never joined, so the
/// quantifiers shrink to the live subgraph; but the root's neighbors defer
/// to the root by instance knowledge, not by observation, so when the root's
/// write dies they still decline — an uncovered hole the protocol cannot
/// detect with its single write already spent.)
fn degraded_rooted_mis(g: &Graph, set: &[NodeId], root: NodeId, dead: &[NodeId]) -> bool {
    let in_set = |v: NodeId| set.contains(&v);
    set.iter().all(|&v| live(v, dead))
        && set
            .iter()
            .all(|&u| set.iter().all(|&v| u == v || !g.has_edge(u, v)))
        && (1..=g.n() as NodeId)
            .filter(|&v| live(v, dead) && !in_set(v))
            .all(|v| {
                set.iter().any(|&u| g.has_edge(u, v)) || (!live(root, dead) && g.has_edge(root, v))
            })
        && (!live(root, dead) || in_set(root))
}

fn build_oracle(
    k: usize,
) -> impl for<'g> Fn(&'g Graph) -> BoundOracle<'g, Result<Graph, BuildError>> + Send + Sync {
    move |g| {
        let fits = checks::degeneracy(g).0 <= k;
        Box::new(move |out, dead| match out {
            Outcome::Success(Ok(h)) if dead.is_empty() => fits && h == g,
            Outcome::Success(Ok(h)) => reconstruction_sandwich(g, h, dead),
            // With casualties the surviving evidence may look off-class, so
            // robust rejection is acceptable even on in-class inputs.
            Outcome::Success(Err(_)) => !fits || !dead.is_empty(),
            Outcome::Deadlock { .. } => false,
        })
    }
}

fn build_mixed_oracle(
    k: usize,
) -> impl for<'g> Fn(&'g Graph) -> BoundOracle<'g, Result<Graph, BuildError>> + Send + Sync {
    move |g| {
        let in_class = checks::mixed_elimination(g, k).is_some();
        Box::new(move |out, dead| match out {
            Outcome::Success(Ok(h)) if dead.is_empty() => in_class && h == g,
            Outcome::Success(Ok(h)) => reconstruction_sandwich(g, h, dead),
            Outcome::Success(Err(_)) => !in_class || !dead.is_empty(),
            Outcome::Deadlock { .. } => false,
        })
    }
}

fn naive_oracle() -> impl for<'g> Fn(&'g Graph) -> BoundOracle<'g, Graph> + Send + Sync {
    |g| {
        Box::new(move |out, dead| match out {
            Outcome::Success(h) if dead.is_empty() => h == g,
            Outcome::Success(h) => reconstruction_sandwich(g, h, dead),
            Outcome::Deadlock { .. } => false,
        })
    }
}

fn mis_oracle(
    root: NodeId,
) -> impl for<'g> Fn(&'g Graph) -> BoundOracle<'g, Vec<NodeId>> + Send + Sync {
    move |g| {
        Box::new(move |out, dead| match out {
            Outcome::Success(set) if dead.is_empty() => checks::is_rooted_mis(g, set, root),
            Outcome::Success(set) => degraded_rooted_mis(g, set, root, dead),
            Outcome::Deadlock { .. } => false,
        })
    }
}

fn bfs_oracle() -> impl for<'g> Fn(&'g Graph) -> BoundOracle<'g, checks::BfsForest> + Send + Sync {
    |g| {
        let reference = checks::bfs_forest(g);
        // Free-model degradation: a lost write can strand every node that
        // was waiting on it, so with casualties a deadlock is within
        // contract, and a completed forest built from partial evidence is
        // not refuted against the full-information reference.
        Box::new(move |out, dead| match out {
            Outcome::Success(f) => !dead.is_empty() || *f == reference,
            Outcome::Deadlock { .. } => !dead.is_empty(),
        })
    }
}

fn eob_bfs_oracle() -> impl for<'g> Fn(&'g Graph) -> BoundOracle<'g, BfsOutput> + Send + Sync {
    |g| {
        let valid = checks::is_even_odd_bipartite(g);
        let reference = valid.then(|| checks::bfs_forest(g));
        Box::new(move |out, dead| match out {
            Outcome::Success(BfsOutput::Forest(f)) => {
                !dead.is_empty() || reference.as_ref() == Some(f)
            }
            Outcome::Success(BfsOutput::NotEvenOddBipartite) => !valid || !dead.is_empty(),
            Outcome::Deadlock { .. } => !dead.is_empty(),
        })
    }
}

/// Completion everywhere, plus the reference forest on bipartite inputs.
/// Off the bipartite promise the protocol deadlocks by design (the Open
/// Problem 3 ablation) — those deadlocks *are* oracle failures, which is
/// exactly what the campaign failure-injection pipeline fishes for; the
/// entry is marked `total: false` so all-graph sweeps know not to demand a
/// clean pass. Crash-induced deadlocks, by contrast, are within contract.
fn async_bipartite_bfs_oracle(
) -> impl for<'g> Fn(&'g Graph) -> BoundOracle<'g, checks::BfsForest> + Send + Sync {
    |g| {
        let reference = checks::is_bipartite(g).then(|| checks::bfs_forest(g));
        Box::new(move |out, dead| match out {
            Outcome::Success(f) => match &reference {
                Some(r) => !dead.is_empty() || f == r,
                None => true,
            },
            Outcome::Deadlock { .. } => !dead.is_empty(),
        })
    }
}

fn spanning_oracle() -> impl for<'g> Fn(&'g Graph) -> BoundOracle<'g, SpanningForest> + Send + Sync
{
    |g| {
        let components = checks::components(g);
        Box::new(move |out, dead| match out {
            Outcome::Success(sf) if dead.is_empty() => {
                sf.edges.iter().all(|&(c, p)| g.has_edge(c, p))
                    && sf.edges.len() == g.n() - components.len()
                    && sf.roots.len() == components.len()
                    && checks::components(&Graph::from_edges(g.n(), &sf.edges)) == components
            }
            // Degraded: every surviving parent claim must still be a real
            // edge; completeness is forfeit once a parent write is lost.
            Outcome::Success(sf) => sf.edges.iter().all(|&(c, p)| g.has_edge(c, p)),
            Outcome::Deadlock { .. } => !dead.is_empty(),
        })
    }
}

fn two_cliques_oracle(
) -> impl for<'g> Fn(&'g Graph) -> BoundOracle<'g, TwoCliquesVerdict> + Send + Sync {
    |g| {
        // §5.1 promise: an (n−1)-regular graph on 2n nodes. Off the promise
        // class the protocol may answer anything (but must still terminate);
        // on it, the verdict must equal ground truth. A casualty removes a
        // row of the evidence, so with crashes either verdict is within
        // contract — only termination remains owed.
        let on_promise = g.n() >= 2 && g.n() % 2 == 0 && g.regular_degree() == Some(g.n() / 2 - 1);
        let truth = checks::is_two_cliques(g);
        Box::new(move |out, dead| match out {
            Outcome::Success(v) => {
                !dead.is_empty() || !on_promise || (*v == TwoCliquesVerdict::TwoCliques) == truth
            }
            Outcome::Deadlock { .. } => false,
        })
    }
}

/// One-sided error (Open Problem 4): genuine two-clique instances must be
/// accepted on every schedule; off the yes-class a false accept is a hash
/// collision the protocol explicitly tolerates, so it is not a failure.
fn two_cliques_rand_oracle(
) -> impl for<'g> Fn(&'g Graph) -> BoundOracle<'g, TwoCliquesVerdict> + Send + Sync {
    |g| {
        let truth = checks::is_two_cliques(g);
        Box::new(move |out, dead| match out {
            Outcome::Success(v) => {
                !truth || !dead.is_empty() || *v == TwoCliquesVerdict::TwoCliques
            }
            Outcome::Deadlock { .. } => false,
        })
    }
}

fn subgraph_oracle(f: usize) -> impl for<'g> Fn(&'g Graph) -> BoundOracle<'g, Graph> + Send + Sync {
    move |g| {
        let reference = g.induced_prefix(f.min(g.n()));
        Box::new(move |out, dead| match out {
            Outcome::Success(h) if dead.is_empty() => *h == reference,
            Outcome::Success(h) => reconstruction_sandwich(&reference, h, dead),
            Outcome::Deadlock { .. } => false,
        })
    }
}

fn triangle_oracle() -> impl for<'g> Fn(&'g Graph) -> BoundOracle<'g, bool> + Send + Sync {
    |g| {
        let truth = checks::has_triangle(g);
        // Degraded one-sidedly: surviving rows are a subgraph of g, so a
        // reported triangle is always real; a miss may be the casualty's.
        Box::new(move |out, dead| match out {
            Outcome::Success(b) if dead.is_empty() => *b == truth,
            Outcome::Success(b) => !*b || truth,
            Outcome::Deadlock { .. } => false,
        })
    }
}

fn square_oracle() -> impl for<'g> Fn(&'g Graph) -> BoundOracle<'g, bool> + Send + Sync {
    |g| {
        let truth = checks::has_square(g);
        Box::new(move |out, dead| match out {
            Outcome::Success(b) if dead.is_empty() => *b == truth,
            Outcome::Success(b) => !*b || truth,
            Outcome::Deadlock { .. } => false,
        })
    }
}

fn diameter3_oracle() -> impl for<'g> Fn(&'g Graph) -> BoundOracle<'g, bool> + Send + Sync {
    |g| {
        let truth = matches!(checks::diameter(g), Some(d) if d <= 3);
        // One-sided the other way round from detection: distances over the
        // surviving rows only overestimate, so `diameter ≤ 3` claims stay
        // sound and only affirmative answers are checked.
        Box::new(move |out, dead| match out {
            Outcome::Success(b) if dead.is_empty() => *b == truth,
            Outcome::Success(b) => !*b || truth,
            Outcome::Deadlock { .. } => false,
        })
    }
}

fn connectivity_oracle(
) -> impl for<'g> Fn(&'g Graph) -> BoundOracle<'g, ConnectivityReport> + Send + Sync {
    |g| {
        let components = checks::components(g).len();
        Box::new(move |out, dead| match out {
            Outcome::Success(rep) => {
                !dead.is_empty()
                    || (rep.connected == (components <= 1) && rep.components == components)
            }
            Outcome::Deadlock { .. } => !dead.is_empty(),
        })
    }
}

fn edge_count_oracle() -> impl for<'g> Fn(&'g Graph) -> BoundOracle<'g, usize> + Send + Sync {
    |g| {
        Box::new(move |out, dead| match out {
            Outcome::Success(m) if dead.is_empty() => *m == g.m(),
            // Each lost write hides one degree row: the count degrades to a
            // bracket between the fully-surviving edges and the truth.
            Outcome::Success(m) => {
                let floor = g
                    .edges()
                    .filter(|&(u, v)| live(u, dead) && live(v, dead))
                    .count();
                floor <= *m && *m <= g.m()
            }
            Outcome::Deadlock { .. } => false,
        })
    }
}

fn degree_stats_oracle(
) -> impl for<'g> Fn(&'g Graph) -> BoundOracle<'g, DegreeSummary> + Send + Sync {
    |g| {
        let degrees: Vec<usize> = (1..=g.n() as NodeId).map(|v| g.degree(v)).collect();
        Box::new(move |out, dead| match out {
            Outcome::Success(s) if dead.is_empty() => s.degrees == degrees,
            // Survivors' rows must still be exact; casualties' slots are
            // unconstrained (their true degree never reached the board).
            Outcome::Success(s) => {
                s.degrees.len() == degrees.len()
                    && (1..=g.n() as NodeId)
                        .filter(|&v| live(v, dead))
                        .all(|v| s.degrees[v as usize - 1] == degrees[v as usize - 1])
            }
            Outcome::Deadlock { .. } => false,
        })
    }
}

// ---------------------------------------------------------------------------
// Dispatchers.
// ---------------------------------------------------------------------------

/// Resolve `spec` (e.g. `"build:2"`, `"mis:3"`, `"bfs"`) on `n`-node
/// instances and hand the protocol plus its oracle binder to `visitor`.
///
/// `n` only affects instance-dependent defaults (the MIS root is clamped to
/// `1..=n`, matching the historical CLI behavior).
pub fn dispatch<V: ProtocolVisitor>(spec: &str, n: usize, visitor: V) -> Result<V::Result, String> {
    let (kind, arg) = split_spec(spec);
    let k = arg.unwrap_or(2).max(1) as usize;
    Ok(match kind {
        "build" => visitor.visit(BuildDegenerate::new(k), build_oracle(k)),
        "build-mixed" => visitor.visit(BuildMixed::new(k), build_mixed_oracle(k)),
        "naive" => visitor.visit(NaiveBuild, naive_oracle()),
        "mis" => {
            let root = (arg.unwrap_or(1) as NodeId).clamp(1, n.max(1) as NodeId);
            visitor.visit(MisGreedy::new(root), mis_oracle(root))
        }
        "bfs" => visitor.visit(SyncBfs, bfs_oracle()),
        "eob-bfs" => visitor.visit(EobBfs, eob_bfs_oracle()),
        "async-bipartite-bfs" => visitor.visit(AsyncBipartiteBfs, async_bipartite_bfs_oracle()),
        "spanning" => visitor.visit(SpanningForestSync, spanning_oracle()),
        "two-cliques" => visitor.visit(TwoCliques, two_cliques_oracle()),
        "two-cliques-rand" => visitor.visit(
            TwoCliquesRandomized::new(arg.unwrap_or(7), 24),
            two_cliques_rand_oracle(),
        ),
        "subgraph" => visitor.visit(SubgraphPrefix::new(k), subgraph_oracle(k)),
        "triangle" => visitor.visit(TriangleFullRow, triangle_oracle()),
        "square" => visitor.visit(SquareFullRow, square_oracle()),
        "diameter3" => visitor.visit(DiameterAtMost3FullRow, diameter3_oracle()),
        "connectivity" => visitor.visit(ConnectivitySync, connectivity_oracle()),
        "edge-count" => visitor.visit(EdgeCount, edge_count_oracle()),
        "degree-stats" => visitor.visit(DegreeStats, degree_stats_oracle()),
        other => return Err(unknown(other)),
    })
}

/// Resolve `spec` for the **bulk tier**: `SIMASYNC` protocols arrive wrapped
/// in [`Oblivious`]; MIS and 2-CLIQUES arrive as their columnar
/// implementations. Free-**native** protocols (BFS, spanning, connectivity)
/// return an error — the bulk engine has no columnar form for them. The
/// resolved protocols, however, run under any *target* model that includes
/// their native one (`run_bulk`'s `model` argument), so `--model sync|async`
/// executions of the simultaneous-native protocols go through here too.
///
/// The oracle binders are the very same values [`dispatch`] uses, so the
/// step and bulk tiers share one definition of correctness per protocol.
pub fn dispatch_bulk<V: BulkVisitor>(
    spec: &str,
    n: usize,
    visitor: V,
) -> Result<V::Result, String> {
    let (kind, arg) = split_spec(spec);
    let k = arg.unwrap_or(2).max(1) as usize;
    Ok(match kind {
        "build" => visitor.visit(Oblivious::new(BuildDegenerate::new(k)), build_oracle(k)),
        "build-mixed" => visitor.visit(Oblivious::new(BuildMixed::new(k)), build_mixed_oracle(k)),
        "naive" => visitor.visit(Oblivious::new(NaiveBuild), naive_oracle()),
        "mis" => {
            let root = (arg.unwrap_or(1) as NodeId).clamp(1, n.max(1) as NodeId);
            visitor.visit(MisGreedy::new(root), mis_oracle(root))
        }
        "two-cliques" => visitor.visit(TwoCliques, two_cliques_oracle()),
        "two-cliques-rand" => visitor.visit(
            Oblivious::new(TwoCliquesRandomized::new(arg.unwrap_or(7), 24)),
            two_cliques_rand_oracle(),
        ),
        "subgraph" => visitor.visit(Oblivious::new(SubgraphPrefix::new(k)), subgraph_oracle(k)),
        "triangle" => visitor.visit(Oblivious::new(TriangleFullRow), triangle_oracle()),
        "square" => visitor.visit(Oblivious::new(SquareFullRow), square_oracle()),
        "diameter3" => visitor.visit(Oblivious::new(DiameterAtMost3FullRow), diameter3_oracle()),
        "edge-count" => visitor.visit(Oblivious::new(EdgeCount), edge_count_oracle()),
        "degree-stats" => visitor.visit(Oblivious::new(DegreeStats), degree_stats_oracle()),
        "bfs" | "eob-bfs" | "async-bipartite-bfs" | "spanning" | "connectivity" => {
            let model = info(kind).map_or("a free model", |p| match p.model {
                Model::Sync => "the free model SYNC",
                Model::Async => "the free model ASYNC",
                Model::SimSync => "SIMSYNC",
                Model::SimAsync => "SIMASYNC",
            });
            return Err(format!(
                "protocol '{kind}' runs under {model}; the bulk tier executes \
                 simultaneous-native protocols only (SIMASYNC or SIMSYNC — see \
                 `whiteboard list`)"
            ));
        }
        other => return Err(unknown(other)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wb_graph::generators;
    use wb_runtime::bulk::{run_bulk, shuffled_schedule, BulkConfig};
    use wb_runtime::{
        explore_with, run, ExploreConfig, FaultPlan, RandomAdversary, ScheduleAdversary,
    };

    /// Runs the protocol once under a random adversary and applies the
    /// bound oracle to the outcome.
    struct RunOnce<'a> {
        g: &'a Graph,
        seed: u64,
    }

    impl ProtocolVisitor for RunOnce<'_> {
        type Result = bool;
        fn visit<P, B>(self, protocol: P, bind: B) -> bool
        where
            P: Protocol + Clone + Send + Sync,
            P::Node: Send + Sync,
            P::Output: Clone + PartialEq + std::fmt::Debug + Send + Sync,
            B: for<'g> Fn(&'g Graph) -> BoundOracle<'g, P::Output> + Send + Sync,
        {
            let oracle = bind(self.g);
            let report = run(&protocol, self.g, &mut RandomAdversary::new(self.seed));
            oracle(&report.outcome, &report.crashed)
        }
    }

    /// Bulk-runs the protocol on a seeded schedule and applies the oracle.
    struct BulkOnce<'a> {
        g: &'a Graph,
        seed: u64,
    }

    impl BulkVisitor for BulkOnce<'_> {
        type Result = bool;
        fn visit<P, B>(self, protocol: P, bind: B) -> bool
        where
            P: BulkProtocol + Send + Sync,
            P::Output: Clone + PartialEq + std::fmt::Debug + Send + Sync,
            B: for<'g> Fn(&'g Graph) -> BoundOracle<'g, P::Output> + Send + Sync,
        {
            let oracle = bind(self.g);
            let schedule = shuffled_schedule(self.g.n(), self.seed);
            let report = run_bulk(&protocol, self.g, &schedule, None, &BulkConfig::default())
                .expect("registry bulk protocols run under their native model");
            oracle(&report.outcome, &[])
        }
    }

    /// Exhaustively explores the protocol under `crash:1`, judging every
    /// terminal (including every choice of casualty) with the fault-aware
    /// oracle. Returns the terminal count and the rendered failures.
    struct ExploreCrash<'a> {
        g: &'a Graph,
    }

    impl ProtocolVisitor for ExploreCrash<'_> {
        type Result = (u64, Vec<String>);
        fn visit<P, B>(self, protocol: P, bind: B) -> Self::Result
        where
            P: Protocol + Clone + Send + Sync,
            P::Node: Send + Sync,
            P::Output: Clone + PartialEq + std::fmt::Debug + Send + Sync,
            B: for<'g> Fn(&'g Graph) -> BoundOracle<'g, P::Output> + Send + Sync,
        {
            let oracle = bind(self.g);
            let config = ExploreConfig::default().with_faults(Some(FaultPlan::crash_stop(1)));
            let report = explore_with(&protocol, self.g, &config, |o, died| oracle(o, died));
            assert!(!report.truncated, "crash:1 exploration truncated");
            let failures = report.failures.iter().map(|f| format!("{f:?}")).collect();
            (report.terminals, failures)
        }
    }

    #[test]
    fn every_registered_protocol_dispatches_and_passes_its_oracle() {
        // One mid-size instance per protocol, chosen inside each protocol's
        // promise class, driven end to end through the registry.
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
        let cases: Vec<(&str, Graph)> = vec![
            ("build:2", generators::k_degenerate(30, 2, true, &mut rng)),
            ("build-mixed:2", generators::mixed_low_high(24, 2, &mut rng)),
            ("naive", generators::gnp(16, 0.3, &mut rng)),
            ("mis:3", generators::gnp(25, 0.2, &mut rng)),
            ("bfs", generators::gnp(20, 0.15, &mut rng)),
            (
                "eob-bfs",
                generators::even_odd_bipartite_connected(18, 0.2, &mut rng),
            ),
            (
                "async-bipartite-bfs",
                generators::bipartite_fixed(8, 8, 0.3, &mut rng),
            ),
            ("spanning", generators::gnp(22, 0.12, &mut rng)),
            ("two-cliques", generators::two_cliques(6)),
            ("two-cliques-rand", generators::two_cliques(6)),
            ("subgraph:3", generators::gnp(14, 0.3, &mut rng)),
            ("triangle", generators::clique(5)),
            ("square", generators::cycle(4)),
            ("diameter3", generators::star(9)),
            ("connectivity", generators::two_cliques(5)),
            ("edge-count", generators::gnp(20, 0.2, &mut rng)),
            ("degree-stats", generators::cycle(11)),
        ];
        assert_eq!(cases.len(), PROTOCOLS.len(), "one case per registry entry");
        for (spec, g) in &cases {
            let ok = dispatch(spec, g.n(), RunOnce { g, seed: 7 })
                .unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert!(ok, "{spec}: oracle rejected a native run on {g:?}");
        }
    }

    #[test]
    fn every_registered_protocol_survives_single_crash_exploration() {
        // Small in-promise instances, every protocol, exhaustive over both
        // schedule AND casualty choice: the degraded oracles must accept
        // every ≤1-crash terminal, and no referee may panic on a partial
        // board.
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
        let cases: Vec<(&str, Graph)> = vec![
            ("build:2", generators::k_degenerate(6, 2, true, &mut rng)),
            ("build-mixed:2", generators::mixed_low_high(6, 2, &mut rng)),
            ("naive", generators::gnp(5, 0.4, &mut rng)),
            ("mis:1", generators::gnp(5, 0.3, &mut rng)),
            ("bfs", generators::path(4)),
            ("eob-bfs", generators::path(4)),
            ("async-bipartite-bfs", generators::path(4)),
            ("spanning", generators::cycle(4)),
            ("two-cliques", generators::two_cliques(3)),
            ("two-cliques-rand", generators::two_cliques(3)),
            ("subgraph:3", generators::gnp(5, 0.4, &mut rng)),
            ("triangle", generators::clique(4)),
            ("square", generators::cycle(4)),
            ("diameter3", generators::star(5)),
            ("connectivity", generators::path(4)),
            // A path's endpoints have odd degree, so a crashed endpoint
            // leaves an odd degree sum — the handshake lemma must not be
            // asserted against a partial board.
            ("edge-count", generators::path(5)),
            ("degree-stats", generators::cycle(5)),
        ];
        assert_eq!(cases.len(), PROTOCOLS.len(), "one case per registry entry");
        for (spec, g) in &cases {
            let (terminals, failures) =
                dispatch(spec, g.n(), ExploreCrash { g }).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert!(terminals > 0, "{spec}: no terminals");
            assert!(
                failures.is_empty(),
                "{spec}: degraded oracle rejected {} terminals, e.g. {}",
                failures.len(),
                failures[0]
            );
        }
    }

    #[test]
    fn bulk_refusal_names_model_and_alternatives() {
        let probe = |spec: &str| {
            dispatch_bulk(
                spec,
                4,
                BulkOnce {
                    g: &generators::path(4),
                    seed: 0,
                },
            )
            .unwrap_err()
        };
        let err = probe("bfs");
        assert!(err.contains("the free model SYNC"), "{err}");
        assert!(err.contains("SIMASYNC or SIMSYNC"), "{err}");
        assert!(err.contains("simultaneous"), "{err}");
        let err = probe("eob-bfs");
        assert!(err.contains("the free model ASYNC"), "{err}");
    }

    #[test]
    fn bulk_dispatch_covers_exactly_the_simultaneous_entries() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(2);
        for info in PROTOCOLS {
            let g = match info.name {
                "build" | "build-mixed" => generators::k_degenerate(20, 2, true, &mut rng),
                "two-cliques" | "two-cliques-rand" | "connectivity" => generators::two_cliques(5),
                "eob-bfs" => generators::even_odd_bipartite_connected(12, 0.3, &mut rng),
                _ => generators::gnp(18, 0.2, &mut rng),
            };
            let result = dispatch_bulk(info.name, g.n(), BulkOnce { g: &g, seed: 3 });
            if info.bulk {
                assert!(
                    result.as_ref().is_ok_and(|&ok| ok),
                    "{}: expected a passing bulk run, got {result:?}",
                    info.name
                );
                assert!(info.model.is_simultaneous(), "{}", info.name);
            } else {
                assert!(result.is_err(), "{}: free model must be refused", info.name);
            }
        }
    }

    #[test]
    fn both_dispatchers_share_one_oracle_per_protocol() {
        // Same schedule through the step and bulk engines, judged by each
        // dispatcher's oracle: verdicts must agree (here: both pass).
        let g = generators::two_cliques(4);
        let schedule = shuffled_schedule(g.n(), 11);

        struct StepWith<'a> {
            g: &'a Graph,
            schedule: Vec<NodeId>,
        }
        impl ProtocolVisitor for StepWith<'_> {
            type Result = bool;
            fn visit<P, B>(self, protocol: P, bind: B) -> bool
            where
                P: Protocol + Clone + Send + Sync,
                P::Output: Clone + PartialEq + std::fmt::Debug + Send + Sync,
                B: for<'g> Fn(&'g Graph) -> BoundOracle<'g, P::Output> + Send + Sync,
            {
                let oracle = bind(self.g);
                let report = run(
                    &protocol,
                    self.g,
                    &mut ScheduleAdversary::new(self.schedule),
                );
                oracle(&report.outcome, &report.crashed)
            }
        }

        let step = dispatch(
            "two-cliques",
            g.n(),
            StepWith {
                g: &g,
                schedule: schedule.clone(),
            },
        )
        .unwrap();
        let bulk = dispatch_bulk("two-cliques", g.n(), BulkOnce { g: &g, seed: 11 }).unwrap();
        assert!(step && bulk);
    }

    #[test]
    fn info_lookup_and_unknown_specs() {
        assert_eq!(info("mis").unwrap().paper, "Thm 5");
        assert!(info("nope").is_none());
        assert!(dispatch(
            "nope",
            5,
            RunOnce {
                g: &generators::path(3),
                seed: 0
            }
        )
        .is_err());
        assert!(dispatch_bulk(
            "nope",
            5,
            BulkOnce {
                g: &generators::path(3),
                seed: 0
            }
        )
        .is_err());
    }
}
