//! Randomized 2-CLIQUES in `SIMASYNC[log n]` — Open Problem 4, implemented.
//!
//! The paper's conclusion notes that "2-CLIQUES admits a randomized protocol
//! for these models" and asks (Open Problem 4) which problems randomized
//! `SIMASYNC[log n]` solves. Here is the natural public-coin protocol:
//!
//! Each node XOR-hashes its **closed** neighborhood `N[v]` through a shared
//! random table `r : {1..n} → {0,1}^b` (public coins, the standard assumption
//! of the simultaneous-messages literature the paper builds on) and writes
//! `(ID(v), ⊕_{u∈N[v]} r(u))`. The referee groups nodes by fingerprint: the
//! graph is two `n`-cliques iff nodes split into two groups `A ∪ B` of equal
//! size whose fingerprints equal `h(A)` and `h(B)` respectively — which the
//! referee recomputes from the IDs on the board.
//!
//! One-sided error: two genuine cliques are always accepted (including the
//! probability-2^(−b) event that the two cliques' hashes collide into a
//! single group, which the referee cannot refute and therefore accepts); a
//! non-2-clique `(n−1)`-regular graph is falsely accepted only through a hash
//! collision among distinct neighborhoods, probability ≤ (2n+1)·2^(−b) by a
//! union bound.

use crate::codec::{read_id, write_id};
use crate::two_cliques::TwoCliquesVerdict;
use wb_graph::NodeId;
use wb_math::{id_bits, BitReader, BitVec, BitWriter};
use wb_runtime::{LocalView, Model, Node, Protocol, Whiteboard};

/// Public-coin SIMASYNC 2-CLIQUES tester.
#[derive(Clone, Debug)]
pub struct TwoCliquesRandomized {
    seed: u64,
    bits: u32,
}

impl TwoCliquesRandomized {
    /// Protocol with shared-randomness `seed` and `bits`-bit fingerprints
    /// (`1 ≤ bits ≤ 64`).
    pub fn new(seed: u64, bits: u32) -> Self {
        assert!((1..=64).contains(&bits));
        TwoCliquesRandomized { seed, bits }
    }

    /// The shared random table entry `r(u)` — derived deterministically from
    /// the public seed, so every node (and the referee) agrees on it.
    fn coin(&self, u: NodeId) -> u64 {
        // SplitMix64 on (seed, u): adequate as a shared pseudo-random table.
        let mut z = self.seed ^ (u as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        if self.bits == 64 {
            z
        } else {
            z & ((1u64 << self.bits) - 1)
        }
    }

    fn hash_closed_neighborhood(&self, view: &LocalView) -> u64 {
        let mut h = self.coin(view.id);
        for &u in &view.neighbors {
            h ^= self.coin(u);
        }
        h
    }

    fn hash_set(&self, ids: &[NodeId]) -> u64 {
        ids.iter().fold(0, |h, &u| h ^ self.coin(u))
    }
}

/// Stateless SIMASYNC node.
#[derive(Clone)]
pub struct RandomizedNode {
    fingerprint: u64,
    bits: u32,
}

impl Node for RandomizedNode {
    fn observe(&mut self, _v: &LocalView, _s: usize, _w: NodeId, _m: &BitVec) {
        unreachable!("SIMASYNC nodes are never shown the board");
    }

    fn compose(&mut self, view: &LocalView) -> BitVec {
        let mut w = BitWriter::new();
        write_id(&mut w, view.id, view.n);
        w.write_bits(self.fingerprint, self.bits);
        w.finish()
    }
}

impl Protocol for TwoCliquesRandomized {
    type Node = RandomizedNode;
    type Output = TwoCliquesVerdict;

    fn model(&self) -> Model {
        Model::SimAsync
    }

    fn budget_bits(&self, n: usize) -> u32 {
        id_bits(n) + self.bits
    }

    fn spawn(&self, view: &LocalView) -> RandomizedNode {
        RandomizedNode {
            fingerprint: self.hash_closed_neighborhood(view),
            bits: self.bits,
        }
    }

    fn output(&self, n: usize, board: &Whiteboard) -> TwoCliquesVerdict {
        if n % 2 != 0 {
            return TwoCliquesVerdict::NotTwoCliques;
        }
        let mut groups: std::collections::HashMap<u64, Vec<NodeId>> =
            std::collections::HashMap::new();
        for e in board.entries() {
            let mut r = BitReader::new(&e.msg);
            let id = read_id(&mut r, n);
            let fp = r.read_bits(self.bits);
            groups.entry(fp).or_default().push(id);
        }
        match groups.len() {
            // The two cliques' set-hashes collided (probability 2^−b): the
            // referee cannot refute, and must accept to stay one-sided. A
            // non-2-clique lands here only if two *distinct* neighborhoods
            // collided — folded into the union bound.
            1 => TwoCliquesVerdict::TwoCliques,
            2 => {
                let ok = groups
                    .iter()
                    .all(|(&fp, ids)| ids.len() == n / 2 && self.hash_set(ids) == fp);
                if ok {
                    TwoCliquesVerdict::TwoCliques
                } else {
                    TwoCliquesVerdict::NotTwoCliques
                }
            }
            // Three or more fingerprints can never arise from two cliques.
            _ => TwoCliquesVerdict::NotTwoCliques,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wb_graph::generators;
    use wb_runtime::{run, MinIdAdversary, Outcome, RandomAdversary};

    #[test]
    fn always_accepts_two_cliques() {
        // One-sided error: YES instances accepted for every seed.
        for half in [3usize, 5, 10] {
            let g = generators::two_cliques(half);
            for seed in 0..50 {
                let p = TwoCliquesRandomized::new(seed, 24);
                let report = run(&p, &g, &mut MinIdAdversary);
                assert_eq!(
                    report.outcome,
                    Outcome::Success(TwoCliquesVerdict::TwoCliques)
                );
            }
        }
    }

    #[test]
    fn rejects_impostors_whp() {
        let mut rng = StdRng::seed_from_u64(9);
        for half in [3usize, 6, 10] {
            let g = generators::connected_regular_impostor(half, &mut rng);
            for seed in 0..50 {
                let p = TwoCliquesRandomized::new(seed, 24);
                let report = run(&p, &g, &mut RandomAdversary::new(seed));
                assert_eq!(
                    report.outcome,
                    Outcome::Success(TwoCliquesVerdict::NotTwoCliques),
                    "half={half} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn error_rate_shrinks_with_fingerprint_width() {
        // With 1-bit fingerprints false accepts are plausible; with 32 bits
        // they vanish over many trials. (We only assert the wide case — the
        // narrow case is a demonstration, not a guarantee.)
        let mut rng = StdRng::seed_from_u64(10);
        let g = generators::connected_regular_impostor(4, &mut rng);
        let mut narrow_accepts = 0u32;
        for seed in 0..200 {
            let narrow = TwoCliquesRandomized::new(seed, 1);
            if run(&narrow, &g, &mut MinIdAdversary).outcome.unwrap()
                == TwoCliquesVerdict::TwoCliques
            {
                narrow_accepts += 1;
            }
            let wide = TwoCliquesRandomized::new(seed, 32);
            assert_eq!(
                run(&wide, &g, &mut MinIdAdversary).outcome.unwrap(),
                TwoCliquesVerdict::NotTwoCliques
            );
        }
        // Informational: narrow fingerprints may or may not produce false
        // accepts on this instance; the test asserts only that widening never
        // hurts (checked above by the wide assertions).
        let _ = narrow_accepts;
    }

    #[test]
    fn odd_order_is_rejected() {
        let g = generators::clique(5);
        let p = TwoCliquesRandomized::new(1, 16);
        let report = run(&p, &g, &mut MinIdAdversary);
        assert_eq!(
            report.outcome,
            Outcome::Success(TwoCliquesVerdict::NotTwoCliques)
        );
    }

    #[test]
    fn budget_is_log_n_plus_b() {
        let g = generators::two_cliques(8);
        let p = TwoCliquesRandomized::new(7, 20);
        let report = run(&p, &g, &mut MinIdAdversary);
        assert_eq!(report.max_message_bits(), id_bits(16) as usize + 20);
    }
}
