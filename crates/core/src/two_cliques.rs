//! 2-CLIQUES in `SIMSYNC[log n]` (§5.1).
//!
//! Promise: the input is an `(n−1)`-regular graph on `2n` nodes; decide
//! whether it is the disjoint union of two `n`-cliques. Each node, when
//! picked, looks at the side labels its already-written neighbors chose:
//!
//! - empty board → label `0` (the paper's first writer);
//! - no written neighbor → label `1` (a fresh component);
//! - unanimous written neighbors → copy their label;
//! - disagreeing written neighbors → write **no**.
//!
//! The paper's acceptance test is "no *no* message". That alone is incomplete:
//! on a *connected* regular impostor an adversary can schedule nodes along a
//! spanning expansion so that every node copies label `0` and nobody ever
//! disagrees. We therefore accept iff there is **no `no` message and some node
//! wrote label 1**. Soundness: if both labels appear and no node saw a
//! disagreement, no edge joins the two label classes (the later endpoint of
//! any crossing edge would have seen the other side), so the graph is
//! disconnected — which, under the promise, happens exactly for two cliques.
//! Completeness: in a genuine two-clique instance the second clique's first
//! writer always has no written neighbors and writes `1`. This strengthening
//! is recorded in DESIGN.md.

use crate::codec::{read_id, write_id};
use wb_graph::NodeId;
use wb_math::{id_bits, BitReader, BitVec, BitWriter};
use wb_runtime::{LocalView, Model, Node, Protocol, Whiteboard};

/// Verdict of the 2-CLIQUES protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TwoCliquesVerdict {
    /// The graph is (under the promise) two disjoint cliques.
    TwoCliques,
    /// The graph is connected (not two cliques).
    NotTwoCliques,
}

/// The §5.1 SIMSYNC protocol.
#[derive(Clone, Copy, Debug, Default)]
pub struct TwoCliques;

const TAG_SIDE0: u64 = 0;
const TAG_SIDE1: u64 = 1;
const TAG_NO: u64 = 2;

/// Node state: the side labels seen among written neighbors, plus whether the
/// board is still empty.
#[derive(Clone, Default)]
pub struct TwoCliquesNode {
    board_len: usize,
    saw_side: [bool; 2],
}

impl Node for TwoCliquesNode {
    fn observe(&mut self, view: &LocalView, _seq: usize, _writer: NodeId, msg: &BitVec) {
        self.board_len += 1;
        let mut r = BitReader::new(msg);
        let id = read_id(&mut r, view.n);
        let tag = r.read_bits(2);
        if view.is_neighbor(id) && tag <= TAG_SIDE1 {
            self.saw_side[tag as usize] = true;
        }
    }

    fn compose(&mut self, view: &LocalView) -> BitVec {
        let tag = match (self.board_len, self.saw_side) {
            (0, _) => TAG_SIDE0,              // first writer overall
            (_, [false, false]) => TAG_SIDE1, // fresh component
            (_, [true, false]) => TAG_SIDE0,
            (_, [false, true]) => TAG_SIDE1,
            (_, [true, true]) => TAG_NO,
        };
        let mut w = BitWriter::new();
        write_id(&mut w, view.id, view.n);
        w.write_bits(tag, 2);
        w.finish()
    }
}

impl Protocol for TwoCliques {
    type Node = TwoCliquesNode;
    type Output = TwoCliquesVerdict;

    fn model(&self) -> Model {
        Model::SimSync
    }

    fn budget_bits(&self, n: usize) -> u32 {
        id_bits(n) + 2
    }

    fn spawn(&self, _view: &LocalView) -> TwoCliquesNode {
        TwoCliquesNode::default()
    }

    fn output(&self, n: usize, board: &Whiteboard) -> TwoCliquesVerdict {
        let mut any_no = false;
        let mut any_side1 = false;
        for e in board.entries() {
            let mut r = BitReader::new(&e.msg);
            let _ = read_id(&mut r, n);
            match r.read_bits(2) {
                TAG_NO => any_no = true,
                TAG_SIDE1 => any_side1 = true,
                _ => {}
            }
        }
        if !any_no && any_side1 {
            TwoCliquesVerdict::TwoCliques
        } else {
            TwoCliquesVerdict::NotTwoCliques
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wb_graph::{checks, generators};
    use wb_runtime::exhaustive::{assert_explored, ExploreConfig};
    use wb_runtime::{run, Outcome, PriorityAdversary, RandomAdversary};

    #[test]
    fn accepts_two_cliques_under_every_schedule() {
        // 2×K₃ on 6 nodes: all 720 schedules.
        let g = generators::two_cliques(3);
        assert_explored(&TwoCliques, &g, &ExploreConfig::default(), |v| {
            *v == TwoCliquesVerdict::TwoCliques
        });
    }

    #[test]
    fn rejects_connected_impostor_under_every_schedule() {
        // The 2-swap impostor on 6 nodes is connected, 2-regular: every
        // schedule must answer NotTwoCliques — including the "creeping"
        // expansion orders that defeat the paper's no-message-only test.
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::connected_regular_impostor(3, &mut rng);
        assert!(checks::is_connected(&g));
        assert_explored(&TwoCliques, &g, &ExploreConfig::default(), |v| {
            *v == TwoCliquesVerdict::NotTwoCliques
        });
    }

    #[test]
    fn creeping_order_is_rejected_on_larger_impostors() {
        // Explicit creeping adversary: schedule along a BFS expansion so all
        // labels copy 0; the ∃-side-1 test still rejects.
        let mut rng = StdRng::seed_from_u64(2);
        for half in [4usize, 6, 10] {
            let g = generators::connected_regular_impostor(half, &mut rng);
            let order = {
                let f = checks::bfs_forest(&g);
                let mut ids: Vec<NodeId> = (1..=g.n() as NodeId).collect();
                ids.sort_by_key(|&v| f.layer[v as usize - 1]);
                ids
            };
            let report = run(&TwoCliques, &g, &mut PriorityAdversary::new(&order));
            assert_eq!(
                report.outcome,
                Outcome::Success(TwoCliquesVerdict::NotTwoCliques)
            );
        }
    }

    #[test]
    fn random_instances_and_adversaries() {
        let mut rng = StdRng::seed_from_u64(3);
        for half in [3usize, 5, 9, 16] {
            let yes = generators::two_cliques(half);
            let no = generators::connected_regular_impostor(half, &mut rng);
            for seed in 0..8 {
                let ry = run(&TwoCliques, &yes, &mut RandomAdversary::new(seed));
                assert_eq!(ry.outcome, Outcome::Success(TwoCliquesVerdict::TwoCliques));
                let rn = run(&TwoCliques, &no, &mut RandomAdversary::new(seed));
                assert_eq!(
                    rn.outcome,
                    Outcome::Success(TwoCliquesVerdict::NotTwoCliques)
                );
            }
        }
    }

    #[test]
    fn connectivity_correspondence_within_promise_class() {
        // §5.1: an (n−1)-regular 2n-node graph is two cliques iff it is
        // disconnected. The protocol therefore decides CONNECTIVITY on the
        // promise class.
        let mut rng = StdRng::seed_from_u64(4);
        for half in [3usize, 4, 6] {
            for g in [
                generators::two_cliques(half),
                generators::connected_regular_impostor(half, &mut rng),
            ] {
                let report = run(&TwoCliques, &g, &mut RandomAdversary::new(7));
                let verdict = report.outcome.unwrap();
                assert_eq!(
                    verdict == TwoCliquesVerdict::TwoCliques,
                    !checks::is_connected(&g),
                );
            }
        }
    }

    #[test]
    fn budget_is_log_n_plus_tag() {
        let g = generators::two_cliques(8);
        let report = run(&TwoCliques, &g, &mut RandomAdversary::new(5));
        assert_eq!(report.max_message_bits(), id_bits(16) as usize + 2);
    }
}
