//! Local-statistics protocols in `SIMASYNC[log n]`.
//!
//! The paper's motivation (§1) is the "mud" setting: massive graphs streamed
//! with one short message per node. Several global statistics need nothing
//! beyond each node's *degree*, making them solvable in the weakest model
//! with a single `2⌈lg n⌉`-bit message — a useful positive contrast to the
//! BUILD/TRIANGLE impossibilities:
//!
//! - [`EdgeCount`] — `m = ½·Σ deg(v)` (handshake lemma);
//! - [`DegreeStats`] — the full degree sequence, max degree, isolated count,
//!   and a regularity check (the §5.1 promise `(n−1)-regular` is checkable).

use crate::codec::{read_id, write_id};
use wb_graph::NodeId;
use wb_math::{id_bits, BitReader, BitVec, BitWriter};
use wb_runtime::{LocalView, Model, Node, Protocol, Whiteboard};

/// Stateless SIMASYNC node writing `(ID, degree)`.
#[derive(Clone)]
pub struct DegreeNode;

impl Node for DegreeNode {
    fn observe(&mut self, _v: &LocalView, _s: usize, _w: NodeId, _m: &BitVec) {
        unreachable!("SIMASYNC nodes are never shown the board");
    }

    fn compose(&mut self, view: &LocalView) -> BitVec {
        let mut w = BitWriter::new();
        write_id(&mut w, view.id, view.n);
        w.write_bits(view.degree() as u64, id_bits(view.n));
        w.finish()
    }
}

fn degrees_from_board(n: usize, board: &Whiteboard) -> Vec<usize> {
    let mut deg = vec![0usize; n];
    for e in board.entries() {
        let mut r = BitReader::new(&e.msg);
        let id = read_id(&mut r, n);
        deg[id as usize - 1] = r.read_bits(id_bits(n)) as usize;
    }
    deg
}

/// Number of edges, from degrees alone (`SIMASYNC[2 log n]`).
#[derive(Clone, Copy, Debug, Default)]
pub struct EdgeCount;

impl Protocol for EdgeCount {
    type Node = DegreeNode;
    type Output = usize;

    fn model(&self) -> Model {
        Model::SimAsync
    }

    fn budget_bits(&self, n: usize) -> u32 {
        2 * id_bits(n)
    }

    fn spawn(&self, _view: &LocalView) -> DegreeNode {
        DegreeNode
    }

    fn output(&self, n: usize, board: &Whiteboard) -> usize {
        let total: usize = degrees_from_board(n, board).iter().sum();
        // The handshake lemma only binds full boards: a missing row (a
        // crashed writer under a fault plan) leaves each of its edges
        // counted once, so the sum may be odd. The floored half then sits
        // inside the degraded bracket [surviving edges, m].
        debug_assert!(
            total % 2 == 0 || board.entries().len() < n,
            "handshake lemma violated on a full board"
        );
        total / 2
    }
}

/// Aggregate degree statistics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegreeSummary {
    /// `deg(v_i)` at index `i−1`.
    pub degrees: Vec<usize>,
    /// Maximum degree.
    pub max_degree: usize,
    /// Number of degree-0 nodes.
    pub isolated: usize,
    /// `Some(d)` iff the graph is d-regular.
    pub regular: Option<usize>,
}

/// Degree sequence and derived statistics (`SIMASYNC[2 log n]`).
#[derive(Clone, Copy, Debug, Default)]
pub struct DegreeStats;

impl Protocol for DegreeStats {
    type Node = DegreeNode;
    type Output = DegreeSummary;

    fn model(&self) -> Model {
        Model::SimAsync
    }

    fn budget_bits(&self, n: usize) -> u32 {
        2 * id_bits(n)
    }

    fn spawn(&self, _view: &LocalView) -> DegreeNode {
        DegreeNode
    }

    fn output(&self, n: usize, board: &Whiteboard) -> DegreeSummary {
        let degrees = degrees_from_board(n, board);
        let max_degree = degrees.iter().copied().max().unwrap_or(0);
        let isolated = degrees.iter().filter(|&&d| d == 0).count();
        let first = degrees.first().copied();
        let regular = match first {
            Some(d) if degrees.iter().all(|&x| x == d) => Some(d),
            _ => None,
        };
        DegreeSummary {
            degrees,
            max_degree,
            isolated,
            regular,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wb_graph::generators;
    use wb_runtime::exhaustive::{assert_explored, ExploreConfig};
    use wb_runtime::{run, Outcome, RandomAdversary};

    #[test]
    fn edge_count_matches_m() {
        let mut rng = StdRng::seed_from_u64(4);
        for n in [1usize, 5, 30, 120] {
            for p in [0.0, 0.2, 1.0] {
                let g = generators::gnp(n, p, &mut rng);
                let report = run(&EdgeCount, &g, &mut RandomAdversary::new(n as u64));
                assert_eq!(report.outcome, Outcome::Success(g.m()), "n={n} p={p}");
            }
        }
    }

    #[test]
    fn edge_count_schedule_independent() {
        let g = generators::cycle(5);
        assert_explored(&EdgeCount, &g, &ExploreConfig::default(), |&m| m == 5);
    }

    #[test]
    fn degree_stats_on_structured_graphs() {
        let star = generators::star(9);
        let report = run(&DegreeStats, &star, &mut RandomAdversary::new(1));
        let s = report.outcome.unwrap();
        assert_eq!(s.max_degree, 8);
        assert_eq!(s.isolated, 0);
        assert_eq!(s.regular, None);
        assert_eq!(s.degrees[0], 8);

        let cyc = generators::cycle(6);
        let s = run(&DegreeStats, &cyc, &mut RandomAdversary::new(2))
            .outcome
            .unwrap();
        assert_eq!(s.regular, Some(2));

        let promise = generators::two_cliques(5);
        let s = run(&DegreeStats, &promise, &mut RandomAdversary::new(3))
            .outcome
            .unwrap();
        assert_eq!(
            s.regular,
            Some(4),
            "the §5.1 (n−1)-regular promise is checkable"
        );
    }

    #[test]
    fn degree_stats_counts_isolated() {
        let mut g = generators::path(3).disjoint_union(&wb_graph::Graph::empty(4));
        g.add_edge(1, 2);
        let s = run(&DegreeStats, &g, &mut RandomAdversary::new(4))
            .outcome
            .unwrap();
        assert_eq!(s.isolated, 4);
    }
}
