//! Delta-debugging schedule shrinking: reduce a failing schedule to a
//! locally minimal, replayable witness.
//!
//! A campaign failure arrives as the executed write order of one trial.
//! That schedule is replayable but rarely *minimal* — most of its picks are
//! incidental. The shrinker mutates the schedule (chunk deletions, prefix
//! truncations, order-normalizing adjacent transpositions) and replays each
//! candidate through [`LenientScheduleAdversary`], which treats the mutated
//! sequence as a preference list and always completes the run; the run's
//! recorded `write_order` — a valid, exactly-replayable schedule — becomes
//! the new witness whenever it still fails and is strictly smaller.
//!
//! "Smaller" is the well-founded order (length, then lexicographic), so the
//! process terminates; the result is **locally minimal**: no single chunk
//! deletion, truncation, or adjacent transposition the shrinker knows
//! produces a smaller failing schedule. The algorithm draws no randomness —
//! shrinking the same witness twice yields byte-identical results.

use wb_graph::{Graph, NodeId};
use wb_runtime::{run, LenientScheduleAdversary, Outcome, Protocol};

/// Result of a shrink run.
#[derive(Clone, Debug)]
pub struct ShrinkReport {
    /// The locally minimal failing schedule (exactly replayable through
    /// `ScheduleAdversary`).
    pub schedule: Vec<NodeId>,
    /// `Debug` rendering of the outcome the minimal schedule produces.
    pub outcome: String,
    /// Length of the witness the shrinker started from (after lenient
    /// normalization).
    pub original_len: usize,
    /// Replays spent.
    pub replays: u64,
}

/// Lenient-replay `hints` and return the executed schedule plus whether the
/// outcome fails, and its rendering.
fn replay<P, F>(
    protocol: &P,
    g: &Graph,
    hints: &[NodeId],
    is_failure: &F,
) -> (Vec<NodeId>, bool, String)
where
    P: Protocol,
    P::Output: std::fmt::Debug,
    F: Fn(&Outcome<P::Output>) -> bool,
{
    let report = run(
        protocol,
        g,
        &mut LenientScheduleAdversary::new(hints.to_vec()),
    );
    let failing = is_failure(&report.outcome);
    (report.write_order, failing, format!("{:?}", report.outcome))
}

/// `(len, lex)` — the strictly decreasing measure every accepted candidate
/// must improve.
fn smaller(candidate: &[NodeId], current: &[NodeId]) -> bool {
    (candidate.len(), candidate) < (current.len(), current)
}

/// One candidate: lenient-replay `hints`, accept the *executed* schedule as
/// the new witness if it still fails and is strictly smaller.
#[allow(clippy::too_many_arguments)]
fn attempt<P, F>(
    protocol: &P,
    g: &Graph,
    is_failure: &F,
    replays: &mut u64,
    hints: &[NodeId],
    cur: &mut Vec<NodeId>,
    cur_outcome: &mut String,
) -> bool
where
    P: Protocol,
    P::Output: std::fmt::Debug,
    F: Fn(&Outcome<P::Output>) -> bool,
{
    *replays += 1;
    let (executed, failing, rendering) = replay(protocol, g, hints, is_failure);
    if failing && smaller(&executed, cur) {
        *cur = executed;
        *cur_outcome = rendering;
        true
    } else {
        false
    }
}

/// Shrink `witness` — a schedule whose run violates the caller's predicate
/// (`is_failure` returns `true` on its outcome) — to a locally minimal
/// failing schedule. Replays are capped at `max_replays` (the result is
/// still failing and no larger, merely possibly less minimal, if the cap
/// bites).
///
/// Returns an error if `witness` does not actually fail under lenient
/// replay — a shrinker quietly "minimizing" a passing schedule would
/// fabricate witnesses.
///
/// ```
/// use wb_sim::shrink_schedule;
/// use wb_core::AsyncBipartiteBfs;
/// use wb_graph::Graph;
///
/// // The Open Problem 3 ablation graph: the async (no-d₀) BFS deadlocks on
/// // every schedule, so any executed order is a failing witness.
/// let g = Graph::from_edges(5, &[(1, 2), (2, 3), (1, 3), (3, 4), (4, 5)]);
/// let witness = vec![1, 2, 3, 4];
/// let shrunk = shrink_schedule(&AsyncBipartiteBfs, &g, &witness, |o| !o.is_success(), 5_000)
///     .expect("the witness fails, so it shrinks");
/// assert!(shrunk.schedule.len() <= witness.len());   // never longer
/// assert!(shrunk.outcome.contains("Deadlock"));      // still failing
/// ```
pub fn shrink_schedule<P, F>(
    protocol: &P,
    g: &Graph,
    witness: &[NodeId],
    is_failure: F,
    max_replays: u64,
) -> Result<ShrinkReport, String>
where
    P: Protocol,
    P::Output: std::fmt::Debug,
    F: Fn(&Outcome<P::Output>) -> bool,
{
    let mut replays = 1u64;
    let (mut cur, failing, mut cur_outcome) = replay(protocol, g, witness, &is_failure);
    if !failing {
        return Err(format!(
            "shrink_schedule: witness {witness:?} does not fail under replay \
             (outcome {cur_outcome})"
        ));
    }
    let original_len = cur.len();
    let try_candidate =
        |replays: &mut u64, hints: &[NodeId], cur: &mut Vec<NodeId>, cur_outcome: &mut String| {
            attempt(protocol, g, &is_failure, replays, hints, cur, cur_outcome)
        };

    loop {
        let mut improved = false;

        // Pass 1 — ddmin-style chunk deletion, coarse to fine.
        let mut chunk = (cur.len() / 2).max(1);
        'chunks: loop {
            let mut start = 0;
            while start + chunk <= cur.len() {
                if replays >= max_replays {
                    break 'chunks;
                }
                let mut candidate = cur.clone();
                candidate.drain(start..start + chunk);
                if try_candidate(&mut replays, &candidate, &mut cur, &mut cur_outcome) {
                    improved = true;
                    // `cur` shrank; retry the same offset against it.
                } else {
                    start += 1;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }

        // Pass 2 — prefix truncations (the lenient replay completes the run
        // with min-ID picks, often reaching the failure with a far shorter
        // preference list).
        for cut in 0..cur.len() {
            if replays >= max_replays {
                break;
            }
            let candidate = cur[..cut].to_vec();
            if try_candidate(&mut replays, &candidate, &mut cur, &mut cur_outcome) {
                improved = true;
                break; // `cur` changed; restart from the outer loop.
            }
        }

        // Pass 3 — order normalization: adjacent transpositions toward the
        // sorted schedule (lexicographic minimality at fixed length).
        let mut i = 0;
        while i + 1 < cur.len() {
            if replays >= max_replays {
                break;
            }
            if cur[i] > cur[i + 1] {
                let mut candidate = cur.clone();
                candidate.swap(i, i + 1);
                if try_candidate(&mut replays, &candidate, &mut cur, &mut cur_outcome) {
                    improved = true;
                    i = i.saturating_sub(1); // bubble further left
                    continue;
                }
            }
            i += 1;
        }

        if !improved || replays >= max_replays {
            break;
        }
    }

    Ok(ShrinkReport {
        schedule: cur,
        outcome: cur_outcome,
        original_len,
        replays,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wb_core::{AsyncBipartiteBfs, MisGreedy};
    use wb_graph::generators;
    use wb_runtime::{MinIdAdversary, RandomAdversary, ScheduleAdversary};

    /// A failure predicate with a known minimal witness: "MIS output is the
    /// min-ID reference answer" fails for every schedule that is not
    /// schedule-equivalent to min-ID order.
    fn mis_failure_setup(n: usize) -> (Graph, Vec<NodeId>, impl Fn(&Outcome<Vec<NodeId>>) -> bool) {
        let g = generators::path(n);
        let reference = run(&MisGreedy::new(1), &g, &mut MinIdAdversary)
            .outcome
            .unwrap();
        let is_failure =
            move |o: &Outcome<Vec<NodeId>>| !matches!(o, Outcome::Success(s) if *s == reference);
        // Find a failing schedule with a seeded random adversary.
        let mut witness = None;
        for seed in 0..64 {
            let report = run(&MisGreedy::new(1), &g, &mut RandomAdversary::new(seed));
            if is_failure(&report.outcome) {
                witness = Some(report.write_order);
                break;
            }
        }
        (
            g,
            witness.expect("MIS is schedule-dependent on a path"),
            is_failure,
        )
    }

    #[test]
    fn shrunk_witness_still_fails_and_never_grows() {
        let (g, witness, is_failure) = mis_failure_setup(6);
        let p = MisGreedy::new(1);
        let report = shrink_schedule(&p, &g, &witness, &is_failure, 10_000).unwrap();
        assert!(report.schedule.len() <= witness.len());
        assert_eq!(report.original_len, witness.len());
        // Strict replay of the minimized schedule reproduces a failure.
        let replayed = run(&p, &g, &mut ScheduleAdversary::new(report.schedule.clone()));
        assert!(is_failure(&replayed.outcome));
        assert_eq!(format!("{:?}", replayed.outcome), report.outcome);
    }

    #[test]
    fn shrinking_is_deterministic() {
        let (g, witness, is_failure) = mis_failure_setup(6);
        let p = MisGreedy::new(1);
        let a = shrink_schedule(&p, &g, &witness, &is_failure, 10_000).unwrap();
        let b = shrink_schedule(&p, &g, &witness, &is_failure, 10_000).unwrap();
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.replays, b.replays);
    }

    #[test]
    fn shrunk_witness_is_locally_minimal_under_single_deletions() {
        let (g, witness, is_failure) = mis_failure_setup(6);
        let p = MisGreedy::new(1);
        let min = shrink_schedule(&p, &g, &witness, &is_failure, 10_000)
            .unwrap()
            .schedule;
        for i in 0..min.len() {
            let mut candidate = min.clone();
            candidate.remove(i);
            let report = run(&p, &g, &mut LenientScheduleAdversary::new(candidate));
            assert!(
                !(is_failure(&report.outcome) && smaller(&report.write_order, &min)),
                "deleting pick {i} yields a smaller failing schedule — not minimal"
            );
        }
    }

    #[test]
    fn deadlock_witnesses_shrink_below_full_length() {
        // The async (no-d₀) bipartite BFS deadlocks on every schedule of
        // the triangle-with-tail graph; the deadlock strikes before every
        // node writes, so minimized witnesses are short prefixes.
        let g = Graph::from_edges(5, &[(1, 2), (2, 3), (1, 3), (3, 4), (4, 5)]);
        let is_failure = |o: &Outcome<_>| !o.is_success();
        let seed_run = run(&AsyncBipartiteBfs, &g, &mut RandomAdversary::new(1));
        assert!(is_failure(&seed_run.outcome));
        let report = shrink_schedule(
            &AsyncBipartiteBfs,
            &g,
            &seed_run.write_order,
            is_failure,
            10_000,
        )
        .unwrap();
        assert!(report.schedule.len() < g.n(), "deadlock before completion");
        let replayed = run(
            &AsyncBipartiteBfs,
            &g,
            &mut ScheduleAdversary::new(report.schedule.clone()),
        );
        assert!(is_failure(&replayed.outcome));
    }

    #[test]
    fn passing_witnesses_are_rejected() {
        let g = generators::path(4);
        let p = MisGreedy::new(1);
        let good = run(&p, &g, &mut MinIdAdversary);
        let err = shrink_schedule(&p, &g, &good.write_order, |_| false, 100).unwrap_err();
        assert!(err.contains("does not fail"), "{err}");
    }
}
