//! Schedule samplers: one seeded adversary per trial.
//!
//! A campaign is a family of independent trials; trial `t` of a campaign
//! seeded `s` runs under the adversary built by
//! [`SamplerKind::adversary`]`(n, `[`trial_seed`]`(s, t))`. The derivation is
//! a splitmix64 hop, so per-trial seeds are decorrelated even for adjacent
//! trial indices, and any single trial replays exactly from `(kind, s, t)`
//! alone — no shared RNG stream, hence no dependence on how trials were
//! sharded across threads.
//!
//! The samplers reuse the `wb_runtime::adversary` toolkit: uniform sampling
//! is [`RandomAdversary`], priority-biased sampling draws a random
//! [`PriorityAdversary`] permutation per trial (the Lemma 4 "fix an order"
//! shape), and the crashy adversary is an adaptive strategy that alternates
//! starvation (stall the smallest IDs) with hammering the neighborhood of
//! the most recent writer — the kind of correlated, worst-case-ish schedule
//! a uniform sampler almost never produces.

use wb_graph::NodeId;
use wb_runtime::{Adversary, PriorityAdversary, RandomAdversary, Whiteboard};

// Re-exported from the runtime adversary toolkit, where it moved when
// faults became first-class (`wb_runtime::fault`): "crashy" is a
// *scheduling* strategy, not a fault plan. The name and seeded behavior
// are a compatibility surface — pinned bit-for-bit below.
pub use wb_runtime::CrashyAdversary;

/// splitmix64 — the statelessly-seedable mixer used for seed derivation.
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The seed of trial `trial` in a campaign seeded `campaign_seed`.
///
/// Pure and stateless: replaying trial `t` needs only the campaign seed and
/// `t`, never the trials before it.
pub fn trial_seed(campaign_seed: u64, trial: u64) -> u64 {
    splitmix64(campaign_seed ^ splitmix64(trial.wrapping_add(1)))
}

/// Which distribution over schedules a campaign draws from.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SamplerKind {
    /// Each round, pick uniformly among the active nodes.
    #[default]
    Uniform,
    /// Draw a uniformly random priority permutation per trial and follow it
    /// (every trial is a Lemma 4 "sequential activation" order).
    Priority,
    /// Adaptive adversarial mixture: starve small IDs, chase the most
    /// recent writer's ID neighborhood, or fall back to a uniform pick.
    Crashy,
}

impl SamplerKind {
    /// Parse a CLI-style sampler name.
    pub fn parse(s: &str) -> Result<SamplerKind, String> {
        match s {
            "uniform" | "random" => Ok(SamplerKind::Uniform),
            "priority" => Ok(SamplerKind::Priority),
            "crashy" | "adversarial" => Ok(SamplerKind::Crashy),
            other => Err(format!(
                "unknown sampler '{other}' (expected uniform|priority|crashy)"
            )),
        }
    }

    /// Stable name (used in reports and JSON).
    pub fn name(&self) -> &'static str {
        match self {
            SamplerKind::Uniform => "uniform",
            SamplerKind::Priority => "priority",
            SamplerKind::Crashy => "crashy",
        }
    }

    /// The adversary for one trial on an `n`-node instance.
    pub fn adversary(&self, n: usize, seed: u64) -> SampledAdversary {
        match self {
            SamplerKind::Uniform => SampledAdversary::Uniform(RandomAdversary::new(seed)),
            SamplerKind::Priority => {
                SampledAdversary::Priority(PriorityAdversary::random(n.max(1), seed))
            }
            SamplerKind::Crashy => SampledAdversary::Crashy(CrashyAdversary::new(seed)),
        }
    }

    /// The whole-schedule form of one trial, for the **bulk tier**: under a
    /// simultaneous model the active set is always "everyone not yet
    /// written", so a trial is exactly a permutation of the nodes.
    ///
    /// - `Priority` returns the *same* permutation the per-round
    ///   [`PriorityAdversary`] would execute (identical seeded shuffle), so
    ///   bulk and step campaigns replay each other's priority trials
    ///   exactly — pinned by a cross-tier test in `wb-sim`.
    /// - `Uniform` returns a uniformly random permutation — the same
    ///   *distribution* as round-by-round uniform picks (without
    ///   replacement), though not the same draw for a given seed.
    /// - `Crashy` is adaptive (it reads the board mid-run) and has no
    ///   whole-schedule form: an error for bulk callers to surface.
    ///
    /// ```
    /// use wb_sim::SamplerKind;
    /// let perm = SamplerKind::Priority.permutation(6, 42).unwrap();
    /// let mut sorted = perm.clone();
    /// sorted.sort_unstable();
    /// assert_eq!(sorted, vec![1, 2, 3, 4, 5, 6]);
    /// assert_eq!(perm, SamplerKind::Priority.permutation(6, 42).unwrap());
    /// assert!(SamplerKind::Crashy.permutation(6, 42).is_err());
    /// ```
    pub fn permutation(&self, n: usize, seed: u64) -> Result<Vec<NodeId>, String> {
        match self {
            SamplerKind::Uniform | SamplerKind::Priority => {
                Ok(wb_runtime::shuffled_schedule(n, seed))
            }
            SamplerKind::Crashy => Err(
                "the crashy sampler is adaptive (it reads the board mid-run) and cannot \
                 drive the bulk tier; use uniform or priority"
                    .into(),
            ),
        }
    }
}

/// A per-trial adversary, dispatched without boxing (the trial loop is hot).
#[derive(Clone, Debug)]
pub enum SampledAdversary {
    /// Uniform pick per round.
    Uniform(RandomAdversary),
    /// Fixed random priority permutation.
    Priority(PriorityAdversary),
    /// Adaptive starve/chase mixture.
    Crashy(CrashyAdversary),
}

impl Adversary for SampledAdversary {
    fn pick(&mut self, active: &[NodeId], board: &Whiteboard) -> NodeId {
        match self {
            SampledAdversary::Uniform(a) => a.pick(active, board),
            SampledAdversary::Priority(a) => a.pick(active, board),
            SampledAdversary::Crashy(a) => a.pick(active, board),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_seeds_are_decorrelated_and_stateless() {
        let a: Vec<u64> = (0..64).map(|t| trial_seed(42, t)).collect();
        let b: Vec<u64> = (0..64).map(|t| trial_seed(42, t)).collect();
        assert_eq!(a, b, "pure function of (campaign seed, trial)");
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), a.len(), "no collisions in a small window");
        assert_ne!(trial_seed(42, 0), trial_seed(43, 0));
        // Adjacent trials differ in many bits, not just the low ones.
        assert!((trial_seed(7, 1) ^ trial_seed(7, 2)).count_ones() > 8);
    }

    #[test]
    fn sampler_names_round_trip() {
        for kind in [
            SamplerKind::Uniform,
            SamplerKind::Priority,
            SamplerKind::Crashy,
        ] {
            assert_eq!(SamplerKind::parse(kind.name()).unwrap(), kind);
        }
        assert!(SamplerKind::parse("bogus").is_err());
    }

    #[test]
    fn sampled_adversaries_are_reproducible() {
        let board = Whiteboard::new();
        let active = vec![1, 3, 5, 8];
        for kind in [
            SamplerKind::Uniform,
            SamplerKind::Priority,
            SamplerKind::Crashy,
        ] {
            let picks = |seed: u64| -> Vec<NodeId> {
                let mut adv = kind.adversary(8, seed);
                (0..16).map(|_| adv.pick(&active, &board)).collect()
            };
            assert_eq!(picks(9), picks(9), "{kind:?} is seed-deterministic");
            assert!(picks(9).iter().all(|p| active.contains(p)));
        }
    }

    #[test]
    fn crashy_seeded_behavior_is_pinned_bit_for_bit() {
        // The compatibility contract for the runtime move: CLI name "crashy"
        // plus a seed must reproduce the exact pick sequence the historical
        // wb_sim implementation drew. Golden values; do not regenerate.
        let board = Whiteboard::new();
        let active = vec![2, 4, 7, 9];
        let mut adv = CrashyAdversary::new(1234);
        let picks: Vec<NodeId> = (0..20).map(|_| adv.pick(&active, &board)).collect();
        assert_eq!(
            picks,
            vec![9, 9, 9, 9, 7, 9, 9, 9, 9, 9, 9, 9, 9, 9, 4, 9, 9, 9, 7, 9],
        );
    }

    #[test]
    fn crashy_biases_toward_starvation_but_keeps_full_support() {
        let board = Whiteboard::new();
        let active = vec![1, 2, 3, 4];
        let mut adv = CrashyAdversary::new(5);
        let picks: Vec<NodeId> = (0..200).map(|_| adv.pick(&active, &board)).collect();
        let maxes = picks.iter().filter(|&&p| p == 4).count();
        assert!(maxes > 80, "starvation mode dominates: {maxes}/200");
        for v in 1..=4 {
            assert!(picks.contains(&v), "support includes {v}");
        }
    }
}
