//! # wb-sim — the statistical tier of the whiteboard machine
//!
//! The exhaustive explorer (`wb_runtime::exhaustive`) discharges the
//! paper's ∀-adversary quantifier *exactly*, but the schedule space grows
//! factorially and caps it near `n ≈ 8`. This crate is the complementary
//! tier: **Monte Carlo schedule campaigns** that run millions of seeded
//! random trials at `n` in the hundreds — far past the exhaustive frontier —
//! and reduce anything that fails to a minimal, replayable witness.
//!
//! - [`sampler`] — the schedule samplers (uniform, priority-biased, crashy
//!   adaptive) and the splitmix64 seed-derivation scheme that makes every
//!   trial independently replayable from `(campaign seed, trial index)`;
//! - [`campaign`] — the sharded campaign runner: trials batched across the
//!   `wb_par` pool, statistics merged as a commutative monoid so the
//!   [`campaign::CampaignReport`] (and its JSON) is byte-identical for any
//!   batch size or thread count; [`run_bulk_campaign`] drives the same
//!   statistics through the **bulk tier** (`wb_runtime::bulk`) for
//!   simultaneous models, where a trial is a whole-schedule permutation;
//! - [`shrink`] — delta-debugging schedule minimization over the lenient
//!   replay adversary: failing schedules shrink to locally minimal
//!   witnesses in the same format the regression corpus replays.
//!
//! A campaign **samples** the quantifier the explorer **proves**: on small
//! instances the campaign's outcome set is a subset of the explorer's (and
//! saturates it for simultaneous models), which the root crate's
//! differential tests pin; on large instances it is the only tool we have,
//! and its failures arrive pre-minimized.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod sampler;
pub mod shrink;

// Campaign reports serialize through the bench harness's JSON module; the
// re-export spares downstream binaries (the CLI) a direct wb-bench edge.
pub use wb_bench::json;

pub use campaign::{
    run_bulk_campaign, run_bulk_campaign_with, run_campaign, run_campaign_with, CampaignConfig,
    CampaignLabels, CampaignReport, TrialFailure,
};
pub use sampler::{trial_seed, CrashyAdversary, SampledAdversary, SamplerKind};
pub use shrink::{shrink_schedule, ShrinkReport};
