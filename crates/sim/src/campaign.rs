//! The Monte Carlo campaign runner: millions of seeded trials, sharded
//! across the thread pool, merged into one deterministic report.
//!
//! # Determinism contract
//!
//! A campaign's [`CampaignReport`] is a pure function of (protocol, graph,
//! [`CampaignConfig`]): trial `t` runs under the adversary seeded
//! [`trial_seed`]`(config.seed, t)` regardless of which worker executes it,
//! and batch statistics form a **commutative monoid** (counts add, outcome
//! sets union, witness lists keep the smallest trial indices), so the merged
//! result is independent of batch size, thread count, and completion order.
//! The golden test in the root crate pins this down to the JSON byte level.
//!
//! [`CampaignReport::to_json`] deliberately contains **no timing fields** —
//! wall-clock numbers would break byte-stability; callers that want
//! throughput (the CLI, `exp_campaign`) measure and report it separately.

use crate::sampler::{splitmix64, trial_seed, SamplerKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet, HashSet};
use wb_bench::json::Json;
use wb_graph::{Graph, NodeId};
use wb_runtime::bulk::{bulk_model, run_bulk, run_bulk_crashed, BulkConfig, BulkProtocol};
use wb_runtime::{Adversary, Engine, FaultKind, FaultPlan, Model, Outcome, Protocol};

/// Tuning knobs for [`run_campaign`].
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Number of independent trials.
    pub trials: u64,
    /// Campaign seed; trial `t` derives its own seed via [`trial_seed`].
    pub seed: u64,
    /// Distribution over schedules.
    pub sampler: SamplerKind,
    /// Trials per work batch (the sharding grain handed to `wb_par`). Purely
    /// a performance knob: the report is identical for any value ≥ 1.
    pub batch: usize,
    /// Carry the full set of distinct outcome renderings only while it stays
    /// within this cap (the differential tests compare small-instance
    /// campaigns against the exhaustive explorer's outcome sets); past the
    /// cap only the exact distinct *count* survives.
    pub outcome_cap: usize,
    /// Keep at most this many failing witnesses (the ones with the smallest
    /// trial indices).
    pub witness_cap: usize,
    /// Fault plan injected per trial (`None` = fault-free, byte-identical to
    /// the historical runner). Trial `t` draws its fault schedule from a
    /// salted hop off [`trial_seed`], so fault randomness never correlates
    /// with the adversary's and the determinism contract carries over.
    pub faults: Option<FaultPlan>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            trials: 10_000,
            seed: 1,
            sampler: SamplerKind::Uniform,
            batch: 1024,
            outcome_cap: 4096,
            witness_cap: 8,
            faults: None,
        }
    }
}

impl CampaignConfig {
    /// Set the trial count.
    pub fn with_trials(mut self, trials: u64) -> Self {
        self.trials = trials;
        self
    }

    /// Set the campaign seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Select the schedule sampler.
    pub fn with_sampler(mut self, sampler: SamplerKind) -> Self {
        self.sampler = sampler;
        self
    }

    /// Set the sharding grain (performance only; the report is invariant).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Inject a fault plan into every trial (`None` = fault-free).
    pub fn with_faults(mut self, faults: Option<FaultPlan>) -> Self {
        self.faults = faults;
        self
    }

    /// The plan that actually drops writes, if any — an inert plan
    /// (budget 0) behaves exactly like `None` everywhere.
    fn live_faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().filter(|p| !p.is_inert())
    }
}

/// Salt separating a trial's fault randomness from its adversary seed.
const FAULT_SALT: u64 = 0xFA17_BAD5_EED0_0001;

/// One trial's fault schedule, drawn deterministically from the (salted)
/// trial seed before the trial runs.
enum TrialFaults {
    /// Fault-free: every write survives.
    None,
    /// Crash-stop: a membership mask over nodes; a victim's single write
    /// crashes at the moment the adversary picks it. Victims are committed
    /// up front (crash-stop faults node identities, not individual writes).
    Crash(Vec<bool>),
    /// Lossy board: an adaptive per-write coin (25% suppression) while the
    /// budget lasts — the adversary decides write by write.
    Lossy { remaining: usize, rng: StdRng },
}

impl TrialFaults {
    /// Draw trial `t`'s schedule. `seed` is the trial's adversary seed
    /// ([`trial_seed`]); faults hop off it through [`FAULT_SALT`].
    fn draw(plan: Option<&FaultPlan>, n: usize, seed: u64) -> TrialFaults {
        let Some(plan) = plan else {
            return TrialFaults::None;
        };
        let mut rng = StdRng::seed_from_u64(splitmix64(seed ^ FAULT_SALT));
        match plan.kind() {
            FaultKind::CrashStop => {
                // k uniform in 0..=min(f, n), then k distinct victims by
                // partial Fisher–Yates — every subset of each size is
                // equally likely.
                let cap = plan.budget().min(n);
                let k = rng.gen_range(0..=cap);
                let mut ids: Vec<NodeId> = (1..=n as NodeId).collect();
                let mut mask = vec![false; n];
                for i in 0..k {
                    let j = rng.gen_range(i..n);
                    ids.swap(i, j);
                    mask[ids[i] as usize - 1] = true;
                }
                TrialFaults::Crash(mask)
            }
            FaultKind::Lossy => TrialFaults::Lossy {
                remaining: plan.budget(),
                rng,
            },
        }
    }

    /// Whether this pick's write dies. Lossy consumes budget here.
    fn kills(&mut self, pick: NodeId) -> bool {
        match self {
            TrialFaults::None => false,
            TrialFaults::Crash(mask) => mask[pick as usize - 1],
            TrialFaults::Lossy { remaining, rng } => {
                if *remaining > 0 && rng.gen_range(0..4u32) == 0 {
                    *remaining -= 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// The crash-stop victim list in ID order (bulk trials mask these).
    fn victims(&self) -> Vec<NodeId> {
        match self {
            TrialFaults::Crash(mask) => mask
                .iter()
                .enumerate()
                .filter_map(|(i, &dead)| dead.then_some(i as NodeId + 1))
                .collect(),
            _ => Vec::new(),
        }
    }
}

/// Descriptive labels stamped into the report (the runner itself is generic
/// and cannot name the protocol or graph family it was handed).
#[derive(Clone, Debug, Default)]
pub struct CampaignLabels {
    /// CLI-style protocol spec, e.g. `"mis:1"`.
    pub protocol: String,
    /// Model the trials ran under, e.g. `"SIMSYNC"`.
    pub model: String,
    /// Graph-family spec, e.g. `"gnp:4"`.
    pub family: String,
}

/// One failing trial, with everything needed to replay it: the trial index
/// and derived seed identify the adversary, and the recorded write order
/// replays exactly through `ScheduleAdversary`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrialFailure {
    /// Trial index within the campaign.
    pub trial: u64,
    /// The trial's derived adversary seed.
    pub seed: u64,
    /// The executed write order (the replayable witness).
    pub schedule: Vec<NodeId>,
    /// Nodes whose write died, in schedule order — replaying the schedule
    /// and crashing exactly these picks reproduces `outcome`. Always empty
    /// for fault-free campaigns.
    pub died: Vec<NodeId>,
    /// `Debug` rendering of the failing outcome.
    pub outcome: String,
}

/// Aggregated result of one campaign. See the module docs for the
/// determinism contract.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Protocol label (from [`CampaignLabels`]).
    pub protocol: String,
    /// Model label.
    pub model: String,
    /// Graph-family label.
    pub family: String,
    /// Nodes in the instance.
    pub n: usize,
    /// Trials executed.
    pub trials: u64,
    /// Campaign seed.
    pub seed: u64,
    /// Sampler name.
    pub sampler: &'static str,
    /// Trials whose outcome satisfied the predicate.
    pub passed: u64,
    /// Trials whose outcome violated the predicate.
    pub failed: u64,
    /// Trials that ended in a deadlock (counted regardless of the
    /// predicate's verdict on them).
    pub deadlocks: u64,
    /// Exact number of distinct outcome renderings observed.
    pub distinct_outcomes: u64,
    /// The distinct outcome renderings, sorted — present only while their
    /// count stays within [`CampaignConfig::outcome_cap`].
    pub outcome_set: Option<Vec<String>>,
    /// Failing witnesses with the smallest trial indices, capped at
    /// [`CampaignConfig::witness_cap`].
    pub witnesses: Vec<TrialFailure>,
    /// Canonical fault-plan spec (`crash:2`, `lossy:1`) when the campaign
    /// injected faults; `None` keeps the JSON byte-identical to the
    /// historical fault-free schema.
    pub faults: Option<String>,
}

impl CampaignReport {
    /// `"PASS"` if no trial violated the predicate, `"FAIL"` otherwise.
    pub fn verdict(&self) -> &'static str {
        if self.failed == 0 {
            "PASS"
        } else {
            "FAIL"
        }
    }

    /// Serialize into a deterministic JSON object (sorted keys, no timing
    /// fields — see the module docs). Seeds are emitted as strings because
    /// an arbitrary `u64` does not survive the round-trip through an `f64`
    /// JSON number.
    pub fn to_json(&self) -> Json {
        let mut obj = BTreeMap::new();
        obj.insert("schema".into(), Json::Str("wb-sim/campaign/v1".into()));
        obj.insert("protocol".into(), Json::Str(self.protocol.clone()));
        obj.insert("model".into(), Json::Str(self.model.clone()));
        obj.insert("family".into(), Json::Str(self.family.clone()));
        obj.insert("n".into(), Json::Num(self.n as f64));
        obj.insert("trials".into(), Json::Num(self.trials as f64));
        obj.insert("seed".into(), Json::Str(self.seed.to_string()));
        obj.insert("sampler".into(), Json::Str(self.sampler.into()));
        obj.insert("passed".into(), Json::Num(self.passed as f64));
        obj.insert("failed".into(), Json::Num(self.failed as f64));
        obj.insert("deadlocks".into(), Json::Num(self.deadlocks as f64));
        obj.insert(
            "distinct_outcomes".into(),
            Json::Num(self.distinct_outcomes as f64),
        );
        obj.insert(
            "outcome_set".into(),
            match &self.outcome_set {
                Some(set) => Json::Arr(set.iter().map(|s| Json::Str(s.clone())).collect()),
                None => Json::Null,
            },
        );
        obj.insert(
            "witnesses".into(),
            Json::Arr(
                self.witnesses
                    .iter()
                    .map(|w| {
                        let mut o = BTreeMap::new();
                        o.insert("trial".into(), Json::Num(w.trial as f64));
                        o.insert("seed".into(), Json::Str(w.seed.to_string()));
                        o.insert(
                            "schedule".into(),
                            Json::Arr(w.schedule.iter().map(|&v| Json::Num(v as f64)).collect()),
                        );
                        if self.faults.is_some() {
                            o.insert(
                                "died".into(),
                                Json::Arr(w.died.iter().map(|&v| Json::Num(v as f64)).collect()),
                            );
                        }
                        o.insert("outcome".into(), Json::Str(w.outcome.clone()));
                        Json::Obj(o)
                    })
                    .collect(),
            ),
        );
        if let Some(spec) = &self.faults {
            obj.insert("faults".into(), Json::Str(spec.clone()));
        }
        obj.insert("verdict".into(), Json::Str(self.verdict().into()));
        Json::Obj(obj)
    }
}

/// 128-bit streaming digest sink (two independent multiply-xor streams,
/// same construction as the engine's configuration fingerprint) — lets the
/// campaign count distinct outcomes exactly without retaining millions of
/// strings. Implements `fmt::Write`, so an outcome's `Debug` rendering can
/// stream straight into the mixers with **no intermediate `String`**: on
/// the per-trial hot path the rendering is only materialized when something
/// actually consumes it (a first-seen outcome or a failing trial).
struct FingerprintWriter {
    a: u64,
    b: u64,
    buf: [u8; 8],
    filled: usize,
}

impl FingerprintWriter {
    fn new() -> Self {
        FingerprintWriter {
            a: 0x6A09_E667_F3BC_C908,
            b: 0xBB67_AE85_84CA_A73B,
            buf: [0; 8],
            filled: 0,
        }
    }

    #[inline]
    fn put_word(&mut self, word: u64) {
        self.a = (self.a ^ word).wrapping_mul(0x0000_0100_0000_01B3);
        self.b = (self.b ^ word.rotate_left(31)).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    }

    fn finish(mut self) -> u128 {
        if self.filled > 0 {
            let mut w = [0u8; 8];
            w[..self.filled].copy_from_slice(&self.buf[..self.filled]);
            let word = u64::from_le_bytes(w) ^ (self.filled as u64) << 56;
            self.put_word(word);
        }
        ((self.a as u128) << 64) | self.b as u128
    }
}

impl std::fmt::Write for FingerprintWriter {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        for &byte in s.as_bytes() {
            self.buf[self.filled] = byte;
            self.filled += 1;
            if self.filled == 8 {
                let word = u64::from_le_bytes(self.buf) ^ 8u64 << 56;
                self.put_word(word);
                self.filled = 0;
            }
        }
        Ok(())
    }
}

/// Digest of a string (the streaming writer fed in one piece) — the test
/// anchor for [`fingerprint_outcome`]'s streamed equivalent.
#[cfg(test)]
fn fingerprint128(s: &str) -> u128 {
    use std::fmt::Write;
    let mut w = FingerprintWriter::new();
    w.write_str(s).expect("fingerprint sink never fails");
    w.finish()
}

/// Digest of an outcome's `Debug` rendering, streamed — no `String` is
/// built. Equal renderings produce equal digests ([`fingerprint128`] of the
/// materialized string agrees byte for byte, pinned by a unit test).
fn fingerprint_outcome<O: std::fmt::Debug>(outcome: &Outcome<O>) -> u128 {
    let mut w = FingerprintWriter::new();
    std::fmt::write(&mut w, format_args!("{outcome:?}")).expect("fingerprint sink never fails");
    w.finish()
}

/// Per-batch statistics — the monoid element merged by `wb_par`'s batched
/// reduction. Every field's merge is commutative and associative, which is
/// what makes the campaign report independent of sharding.
struct BatchStats {
    passed: u64,
    failed: u64,
    deadlocks: u64,
    fingerprints: HashSet<u128>,
    /// `None` = the distinct-outcome set overflowed the cap somewhere below
    /// this node of the merge tree (final value: `None` iff the campaign's
    /// total distinct count exceeds the cap — order-insensitive because
    /// every partial union is a subset of the total).
    outcomes: Option<BTreeSet<String>>,
    /// Failing witnesses, sorted by trial index, at most `witness_cap`.
    witnesses: Vec<TrialFailure>,
}

impl BatchStats {
    fn identity() -> Self {
        BatchStats {
            passed: 0,
            failed: 0,
            deadlocks: 0,
            fingerprints: HashSet::new(),
            outcomes: Some(BTreeSet::new()),
            witnesses: Vec::new(),
        }
    }

    /// Fold one trial into the batch. `outcome`/`schedule` are the trial's
    /// terminal outcome and executed write order — the step and bulk trial
    /// loops both feed this one accumulator.
    #[allow(clippy::too_many_arguments)]
    fn record<O: std::fmt::Debug>(
        &mut self,
        trial: u64,
        seed: u64,
        outcome: Outcome<O>,
        schedule: Vec<NodeId>,
        died: Vec<NodeId>,
        pass: bool,
        config: &CampaignConfig,
    ) {
        if matches!(outcome, Outcome::Deadlock { .. }) {
            self.deadlocks += 1;
        }
        let new_outcome = self.fingerprints.insert(fingerprint_outcome(&outcome));
        // Trials run in ascending order within a batch, so the first
        // `witness_cap` failures are the batch's smallest trial indices.
        let want_witness = !pass && self.witnesses.len() < config.witness_cap;
        // The `Debug` rendering is materialized only when something consumes
        // it — a first-in-batch outcome (outcome-set entry) or a kept
        // witness. The common case (passing trial, outcome seen before) pays
        // only the streamed fingerprint, no `String`.
        let mut rendering = (new_outcome || want_witness).then(|| format!("{outcome:?}"));
        if pass {
            self.passed += 1;
        } else {
            self.failed += 1;
            if want_witness {
                let outcome = if new_outcome {
                    rendering.clone().expect("materialized above")
                } else {
                    rendering.take().expect("materialized above")
                };
                self.witnesses.push(TrialFailure {
                    trial,
                    seed,
                    schedule,
                    died,
                    outcome,
                });
            }
        }
        if new_outcome {
            if let Some(set) = &mut self.outcomes {
                set.insert(rendering.expect("materialized above"));
                if set.len() > config.outcome_cap {
                    self.outcomes = None;
                }
            }
        }
    }

    fn merge(mut self, mut other: BatchStats, config: &CampaignConfig) -> BatchStats {
        self.passed += other.passed;
        self.failed += other.failed;
        self.deadlocks += other.deadlocks;
        if self.fingerprints.len() < other.fingerprints.len() {
            std::mem::swap(&mut self.fingerprints, &mut other.fingerprints);
        }
        self.fingerprints.extend(other.fingerprints);
        self.outcomes = match (self.outcomes.take(), other.outcomes.take()) {
            (Some(mut a), Some(b)) => {
                a.extend(b);
                if a.len() > config.outcome_cap {
                    None
                } else {
                    Some(a)
                }
            }
            _ => None,
        };
        self.witnesses.append(&mut other.witnesses);
        self.witnesses.sort_by_key(|w| w.trial);
        self.witnesses.truncate(config.witness_cap);
        self
    }
}

/// Run `config.trials` independent schedule trials of `protocol` on `g`,
/// classifying each terminal outcome with `check` (`true` = pass), and
/// aggregate into a [`CampaignReport`].
///
/// Trials are sharded into batches of `config.batch` across the `wb_par`
/// pool; each worker clones a per-batch template engine per trial (one
/// allocation-light `memcpy`-style clone instead of re-deriving local views)
/// and drives it with a reused active-set buffer, so the per-trial overhead
/// beyond the protocol's own work is minimal.
///
/// ```
/// use wb_sim::{run_campaign, CampaignConfig, CampaignLabels};
/// use wb_core::MisGreedy;
/// use wb_graph::{checks, generators};
/// use wb_runtime::Outcome;
///
/// let g = generators::path(6);
/// let config = CampaignConfig::default().with_trials(500).with_seed(7);
/// let report = run_campaign(
///     &MisGreedy::new(1),
///     &g,
///     &config,
///     &CampaignLabels::default(),
///     |o| matches!(o, Outcome::Success(s) if checks::is_rooted_mis(&g, s, 1)),
/// );
/// assert_eq!(report.verdict(), "PASS");           // Theorem 5 holds per trial
/// assert_eq!(report.passed, 500);
/// assert!(report.distinct_outcomes >= 2);         // MIS is schedule-dependent
/// ```
pub fn run_campaign<P, C>(
    protocol: &P,
    g: &Graph,
    config: &CampaignConfig,
    labels: &CampaignLabels,
    check: C,
) -> CampaignReport
where
    P: Protocol + Sync,
    P::Output: std::fmt::Debug,
    C: Fn(&Outcome<P::Output>) -> bool + Sync,
{
    run_campaign_with(protocol, g, config, labels, move |o, _| check(o))
}

/// Like [`run_campaign`], but the classifier also sees the trial's dead-node
/// list (schedule order) — the fault-aware form the registry's degraded
/// oracles bind to. With [`CampaignConfig::faults`] unset the slice is
/// always empty and the report is byte-identical to [`run_campaign`]'s.
pub fn run_campaign_with<P, C>(
    protocol: &P,
    g: &Graph,
    config: &CampaignConfig,
    labels: &CampaignLabels,
    check: C,
) -> CampaignReport
where
    P: Protocol + Sync,
    P::Output: std::fmt::Debug,
    C: Fn(&Outcome<P::Output>, &[NodeId]) -> bool + Sync,
{
    let total = config.trials;
    let plan = config.live_faults();
    let stats = wb_par::par_batch_reduce(
        total as usize,
        config.batch.max(1),
        |range| {
            let template = Engine::new(protocol, g);
            let mut stats = BatchStats::identity();
            let mut active: Vec<NodeId> = Vec::with_capacity(g.n());
            for t in range {
                let trial = t as u64;
                let seed = trial_seed(config.seed, trial);
                let mut adv = config.sampler.adversary(g.n(), seed);
                let mut faults = TrialFaults::draw(plan, g.n(), seed);
                let mut engine = template.clone();
                let report = loop {
                    engine.activation_phase();
                    engine.active_set_into(&mut active);
                    if active.is_empty() {
                        break engine.finish();
                    }
                    let pick = adv.pick(&active, engine.board());
                    if faults.kills(pick) {
                        engine.step_crash(pick);
                    } else {
                        engine.step(pick);
                    }
                };
                let pass = check(&report.outcome, &report.crashed);
                stats.record(
                    trial,
                    seed,
                    report.outcome,
                    report.write_order,
                    report.crashed,
                    pass,
                    config,
                );
            }
            stats
        },
        BatchStats::identity,
        |a, b| a.merge(b, config),
    );
    CampaignReport {
        protocol: labels.protocol.clone(),
        model: labels.model.clone(),
        family: labels.family.clone(),
        n: g.n(),
        trials: total,
        seed: config.seed,
        sampler: config.sampler.name(),
        passed: stats.passed,
        failed: stats.failed,
        deadlocks: stats.deadlocks,
        distinct_outcomes: stats.fingerprints.len() as u64,
        outcome_set: stats.outcomes.map(|set| set.into_iter().collect()),
        witnesses: stats.witnesses,
        faults: plan.map(|p| p.spec()),
    }
}

/// Like [`run_campaign`], but every trial executes on the **bulk tier**
/// ([`wb_runtime::bulk`]): trial `t` bulk-runs the whole-schedule
/// permutation [`SamplerKind::permutation`]`(n, trial_seed(seed, t))` under
/// `target` — `None` for the protocol's native simultaneous model, or any
/// model that includes it (`Some(Model::Sync)` / `Some(Model::Async)` for
/// the free-order executions; demotions are refused up front via
/// [`bulk_model`], before any trial runs).
///
/// The determinism contract of [`run_campaign`] carries over verbatim — the
/// report is a pure function of `(protocol, g, config, target)`, identical
/// for any batch size or thread count. The crashy sampler is refused (it is
/// adaptive and has no whole-schedule form).
///
/// For the **priority** sampler, bulk trials replay the step tier's trials
/// *exactly* (same seeded permutation per trial), so on simultaneous
/// protocols the two tiers produce byte-identical reports — a cross-tier
/// invariant pinned by a unit test here.
///
/// ```
/// use wb_sim::{run_bulk_campaign, CampaignConfig, CampaignLabels, SamplerKind};
/// use wb_core::MisGreedy;
/// use wb_graph::{checks, generators};
/// use wb_runtime::Outcome;
///
/// let g = generators::gnp(200, 0.02, &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1));
/// let config = CampaignConfig::default().with_trials(200).with_seed(9);
/// let report = run_bulk_campaign(
///     &MisGreedy::new(1),
///     &g,
///     &config,
///     &CampaignLabels::default(),
///     None,
///     |o| matches!(o, Outcome::Success(s) if checks::is_rooted_mis(&g, s, 1)),
/// ).unwrap();
/// assert_eq!(report.verdict(), "PASS");
/// assert_eq!(report.trials, 200);
/// ```
pub fn run_bulk_campaign<P, C>(
    protocol: &P,
    g: &Graph,
    config: &CampaignConfig,
    labels: &CampaignLabels,
    target: Option<Model>,
    check: C,
) -> Result<CampaignReport, String>
where
    P: BulkProtocol + Sync,
    P::Output: std::fmt::Debug,
    C: Fn(&Outcome<P::Output>) -> bool + Sync,
{
    run_bulk_campaign_with(protocol, g, config, labels, target, move |o, _| check(o))
}

/// The fault-aware form of [`run_bulk_campaign`] (see [`run_campaign_with`]).
/// Crash-stop trials draw the same per-trial victim sets as the step tier
/// and mask them columnarly via [`run_bulk_crashed`], so the cross-tier
/// byte-identity for the priority sampler survives fault injection. Lossy
/// plans are refused: the lossy adversary decides write by write with full
/// board view, which has no whole-schedule columnar form.
pub fn run_bulk_campaign_with<P, C>(
    protocol: &P,
    g: &Graph,
    config: &CampaignConfig,
    labels: &CampaignLabels,
    target: Option<Model>,
    check: C,
) -> Result<CampaignReport, String>
where
    P: BulkProtocol + Sync,
    P::Output: std::fmt::Debug,
    C: Fn(&Outcome<P::Output>, &[NodeId]) -> bool + Sync,
{
    // Surface an unusable sampler or an unsupported model before spawning
    // any worker — the trial loop may then unwrap unconditionally.
    config.sampler.permutation(g.n(), 0)?;
    bulk_model(protocol.model(), target).map_err(|e| e.to_string())?;
    let plan = config.live_faults();
    if plan.is_some_and(|p| p.kind() == FaultKind::Lossy) {
        return Err(
            "the bulk tier executes crash-stop fault plans only: lossy suppression is an \
             adaptive mid-run adversary (use `run` or `campaign` on the step tier for lossy:f)"
                .into(),
        );
    }
    let total = config.trials;
    let bulk_config = BulkConfig::default();
    let stats = wb_par::par_batch_reduce(
        total as usize,
        config.batch.max(1),
        |range| {
            let mut stats = BatchStats::identity();
            for t in range {
                let trial = t as u64;
                let seed = trial_seed(config.seed, trial);
                let schedule = config
                    .sampler
                    .permutation(g.n(), seed)
                    .expect("checked before sharding");
                let report = if plan.is_some() {
                    let victims = TrialFaults::draw(plan, g.n(), seed).victims();
                    run_bulk_crashed(protocol, g, &schedule, target, &bulk_config, &victims)
                } else {
                    run_bulk(protocol, g, &schedule, target, &bulk_config)
                }
                .expect("bulk model pre-validated");
                let pass = check(&report.outcome, &report.crashed);
                // The *executed* write order is the replayable witness: it
                // equals the sampled permutation under simultaneous and SYNC
                // targets, but the ASYNC activation chain runs in ID order
                // regardless of the draw.
                stats.record(
                    trial,
                    seed,
                    report.outcome,
                    report.write_order,
                    report.crashed,
                    pass,
                    config,
                );
            }
            stats
        },
        BatchStats::identity,
        |a, b| a.merge(b, config),
    );
    Ok(CampaignReport {
        protocol: labels.protocol.clone(),
        model: labels.model.clone(),
        family: labels.family.clone(),
        n: g.n(),
        trials: total,
        seed: config.seed,
        sampler: config.sampler.name(),
        passed: stats.passed,
        failed: stats.failed,
        deadlocks: stats.deadlocks,
        distinct_outcomes: stats.fingerprints.len() as u64,
        outcome_set: stats.outcomes.map(|set| set.into_iter().collect()),
        witnesses: stats.witnesses,
        faults: plan.map(|p| p.spec()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wb_core::{AsyncBipartiteBfs, MisGreedy, TwoCliques};
    use wb_graph::{checks, generators};
    use wb_runtime::{run, ScheduleAdversary};

    fn mis_labels() -> CampaignLabels {
        CampaignLabels {
            protocol: "mis:1".into(),
            model: "SIMSYNC".into(),
            family: "path".into(),
        }
    }

    #[test]
    fn campaign_counts_are_consistent() {
        let g = generators::path(5);
        let config = CampaignConfig::default().with_trials(2_000).with_seed(7);
        let report = run_campaign(
            &MisGreedy::new(1),
            &g,
            &config,
            &mis_labels(),
            |o| matches!(o, Outcome::Success(s) if checks::is_rooted_mis(&g, s, 1)),
        );
        assert_eq!(report.passed + report.failed, report.trials);
        assert_eq!(report.failed, 0, "MIS oracle holds on every schedule");
        assert_eq!(report.deadlocks, 0);
        assert_eq!(report.verdict(), "PASS");
        let set = report.outcome_set.as_ref().expect("small instance");
        assert_eq!(set.len() as u64, report.distinct_outcomes);
        assert!(report.distinct_outcomes >= 2, "MIS is schedule-dependent");
    }

    #[test]
    fn campaign_report_is_batch_and_thread_insensitive() {
        let g = generators::path(5);
        let base = CampaignConfig::default().with_trials(1_500).with_seed(42);
        let render = |config: &CampaignConfig| {
            run_campaign(&MisGreedy::new(1), &g, config, &mis_labels(), |_| true)
                .to_json()
                .to_string()
        };
        // Batch = trials forces the sequential path; small batches exercise
        // the parallel merge in arbitrary completion order.
        let sequential = render(&base.clone().with_batch(1_500));
        for batch in [1usize, 13, 64, 500] {
            assert_eq!(render(&base.clone().with_batch(batch)), sequential);
        }
    }

    #[test]
    fn failing_campaigns_record_replayable_witnesses() {
        // The async (no-d₀) bipartite BFS deadlocks on every schedule of the
        // triangle-with-tail graph (the Open Problem 3 ablation): every
        // trial fails, witnesses must replay to the recorded outcome
        // exactly.
        let g = Graph::from_edges(5, &[(1, 2), (2, 3), (1, 3), (3, 4), (4, 5)]);
        let config = CampaignConfig::default().with_trials(200).with_seed(3);
        let report = run_campaign(
            &AsyncBipartiteBfs,
            &g,
            &config,
            &CampaignLabels::default(),
            |o| o.is_success(),
        );
        assert_eq!(report.verdict(), "FAIL");
        assert_eq!(report.failed, report.trials);
        assert_eq!(report.deadlocks, report.trials);
        assert!(!report.witnesses.is_empty());
        assert!(report.witnesses.len() <= config.witness_cap);
        // Witnesses are the earliest failing trials, in order.
        assert!(report.witnesses.windows(2).all(|w| w[0].trial < w[1].trial));
        assert_eq!(report.witnesses[0].trial, 0);
        for w in &report.witnesses {
            let replay = run(
                &AsyncBipartiteBfs,
                &g,
                &mut ScheduleAdversary::new(w.schedule.clone()),
            );
            assert_eq!(format!("{:?}", replay.outcome), w.outcome);
        }
    }

    #[test]
    fn outcome_set_overflow_keeps_exact_distinct_count() {
        let g = generators::path(6);
        let mut config = CampaignConfig::default().with_trials(3_000).with_seed(5);
        config.outcome_cap = 2; // force overflow: MIS has > 2 outcomes here
        let report = run_campaign(&MisGreedy::new(1), &g, &config, &mis_labels(), |_| true);
        assert!(report.outcome_set.is_none(), "overflowed the cap");
        assert!(report.distinct_outcomes > 2, "count survives the overflow");
        // And the overflow decision is sharding-insensitive too.
        let sequential = run_campaign(
            &MisGreedy::new(1),
            &g,
            &config.clone().with_batch(3_000),
            &mis_labels(),
            |_| true,
        );
        assert_eq!(
            sequential.to_json().to_string(),
            report.to_json().to_string()
        );
    }

    #[test]
    fn samplers_change_the_empirical_distribution_not_the_support() {
        let g = generators::path(5);
        let outcomes = |sampler: SamplerKind| {
            let config = CampaignConfig::default()
                .with_trials(4_000)
                .with_seed(11)
                .with_sampler(sampler);
            run_campaign(&MisGreedy::new(1), &g, &config, &mis_labels(), |_| true)
                .outcome_set
                .expect("small instance")
        };
        let uniform = outcomes(SamplerKind::Uniform);
        let crashy = outcomes(SamplerKind::Crashy);
        let priority = outcomes(SamplerKind::Priority);
        // On a 5-path with 4k trials every sampler saturates the (tiny)
        // reachable outcome set — crashy included, because it keeps full
        // support.
        assert_eq!(uniform, crashy);
        assert_eq!(uniform, priority);
    }

    #[test]
    fn streamed_outcome_fingerprint_matches_string_fingerprint() {
        // The hot path streams the Debug rendering into the mixers without a
        // String; the digest must equal the one computed from the
        // materialized rendering, including across the 8-byte word boundary.
        let outcomes: Vec<Outcome<Vec<u32>>> = vec![
            Outcome::Success(vec![]),
            Outcome::Success(vec![1]),
            Outcome::Success((1..40).collect()),
            Outcome::Deadlock { awake: vec![2, 5] },
        ];
        for o in &outcomes {
            assert_eq!(
                fingerprint_outcome(o),
                fingerprint128(&format!("{o:?}")),
                "{o:?}"
            );
        }
    }

    #[test]
    fn bulk_priority_campaign_replays_step_campaign_byte_for_byte() {
        // Under a simultaneous model the priority sampler's trial IS a
        // seeded permutation, and the bulk tier draws the identical one —
        // so the two engines must produce byte-identical campaign reports.
        let g = generators::gnp(
            30,
            0.15,
            &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(2),
        );
        let config = CampaignConfig::default()
            .with_trials(400)
            .with_seed(13)
            .with_sampler(SamplerKind::Priority);
        let labels = mis_labels();
        let check = |o: &Outcome<Vec<wb_graph::NodeId>>| matches!(o, Outcome::Success(s) if checks::is_rooted_mis(&g, s, 1));
        let step = run_campaign(&MisGreedy::new(1), &g, &config, &labels, check);
        let bulk =
            run_bulk_campaign(&MisGreedy::new(1), &g, &config, &labels, None, check).unwrap();
        assert_eq!(
            step.to_json().to_string(),
            bulk.to_json().to_string(),
            "priority trials must replay across tiers"
        );
    }

    #[test]
    fn bulk_campaign_is_batch_insensitive_and_refuses_crashy() {
        let g = generators::two_cliques(8);
        let base = CampaignConfig::default().with_trials(300).with_seed(5);
        let labels = CampaignLabels::default();
        let render = |config: &CampaignConfig| {
            run_bulk_campaign(&TwoCliques, &g, config, &labels, None, |o| {
                matches!(
                    o,
                    Outcome::Success(v) if *v == wb_core::two_cliques::TwoCliquesVerdict::TwoCliques
                )
            })
            .unwrap()
            .to_json()
            .to_string()
        };
        let sequential = render(&base.clone().with_batch(300));
        for batch in [1usize, 7, 64] {
            assert_eq!(render(&base.clone().with_batch(batch)), sequential);
        }
        let crashy = base.clone().with_sampler(SamplerKind::Crashy);
        assert!(
            run_bulk_campaign(&TwoCliques, &g, &crashy, &labels, None, |_| true).is_err(),
            "crashy has no whole-schedule form"
        );
    }

    #[test]
    fn inert_fault_plan_is_byte_identical_to_no_plan() {
        let g = generators::path(5);
        let base = CampaignConfig::default().with_trials(800).with_seed(21);
        let check = |o: &Outcome<Vec<wb_graph::NodeId>>, died: &[NodeId]| {
            died.is_empty() && matches!(o, Outcome::Success(s) if checks::is_rooted_mis(&g, s, 1))
        };
        let none = run_campaign_with(&MisGreedy::new(1), &g, &base, &mis_labels(), check);
        let inert = run_campaign_with(
            &MisGreedy::new(1),
            &g,
            &base.clone().with_faults(Some(FaultPlan::crash_stop(0))),
            &mis_labels(),
            check,
        );
        assert_eq!(none.to_json().to_string(), inert.to_json().to_string());
        assert!(none.faults.is_none());
        assert!(!none.to_json().to_string().contains("\"faults\""));
        assert!(!none.to_json().to_string().contains("\"died\""));
    }

    #[test]
    fn crash_campaign_reports_faults_and_replayable_died_witnesses() {
        let g = generators::path(6);
        let config = CampaignConfig::default()
            .with_trials(600)
            .with_seed(17)
            .with_faults(Some(FaultPlan::crash_stop(2)));
        // Fail any trial that crashed someone, so witnesses carry non-empty
        // died lists we can replay.
        let report =
            run_campaign_with(&MisGreedy::new(1), &g, &config, &mis_labels(), |_, died| {
                died.is_empty()
            });
        assert_eq!(report.faults.as_deref(), Some("crash:2"));
        assert!(report.failed > 0, "crash:2 on 600 trials must hit someone");
        assert!(report.passed > 0, "k = 0 draws keep fault-free trials");
        assert!(!report.witnesses.is_empty());
        for w in &report.witnesses {
            assert!(!w.died.is_empty() && w.died.len() <= 2);
            // died ⊆ schedule, in schedule order.
            let order: Vec<NodeId> = w
                .schedule
                .iter()
                .copied()
                .filter(|v| w.died.contains(v))
                .collect();
            assert_eq!(order, w.died);
            // Replay: crash exactly the recorded picks, expect the outcome.
            let protocol = MisGreedy::new(1);
            let mut engine = Engine::new(&protocol, &g);
            for &v in &w.schedule {
                engine.activation_phase();
                if w.died.contains(&v) {
                    engine.step_crash(v);
                } else {
                    engine.step(v);
                }
            }
            engine.activation_phase();
            let replay = engine.finish();
            assert_eq!(format!("{:?}", replay.outcome), w.outcome);
            assert_eq!(replay.crashed, w.died);
        }
        let json = report.to_json().to_string();
        assert!(json.contains("\"faults\":\"crash:2\""));
        assert!(json.contains("\"died\""));
    }

    #[test]
    fn faulted_campaign_is_batch_insensitive() {
        let g = generators::path(5);
        for plan in [FaultPlan::crash_stop(2), FaultPlan::lossy(2)] {
            let base = CampaignConfig::default()
                .with_trials(900)
                .with_seed(33)
                .with_faults(Some(plan));
            let render = |config: &CampaignConfig| {
                run_campaign_with(&MisGreedy::new(1), &g, config, &mis_labels(), |_, d| {
                    d.is_empty()
                })
                .to_json()
                .to_string()
            };
            let sequential = render(&base.clone().with_batch(900));
            for batch in [1usize, 17, 256] {
                assert_eq!(render(&base.clone().with_batch(batch)), sequential);
            }
        }
    }

    #[test]
    fn lossy_campaign_respects_budget() {
        let g = generators::path(6);
        let config = CampaignConfig::default()
            .with_trials(400)
            .with_seed(9)
            .with_faults(Some(FaultPlan::lossy(1)));
        let report =
            run_campaign_with(&MisGreedy::new(1), &g, &config, &mis_labels(), |_, died| {
                died.is_empty()
            });
        assert_eq!(report.faults.as_deref(), Some("lossy:1"));
        assert!(report.failed > 0, "25% per-write suppression must fire");
        for w in &report.witnesses {
            assert_eq!(w.died.len(), 1, "budget 1 caps suppression");
        }
    }

    #[test]
    fn bulk_crash_campaign_replays_step_campaign_byte_for_byte() {
        // The priority cross-tier identity must survive fault injection:
        // both tiers draw the same victim set per trial, the step engine
        // crashes victims when picked, the bulk engine masks them
        // columnarly.
        let g = generators::gnp(
            25,
            0.2,
            &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(6),
        );
        let config = CampaignConfig::default()
            .with_trials(300)
            .with_seed(29)
            .with_sampler(SamplerKind::Priority)
            .with_faults(Some(FaultPlan::crash_stop(3)));
        let labels = mis_labels();
        let check = |o: &Outcome<Vec<wb_graph::NodeId>>, died: &[NodeId]| {
            died.is_empty() && matches!(o, Outcome::Success(s) if checks::is_rooted_mis(&g, s, 1))
        };
        let step = run_campaign_with(&MisGreedy::new(1), &g, &config, &labels, check);
        let bulk =
            run_bulk_campaign_with(&MisGreedy::new(1), &g, &config, &labels, None, check).unwrap();
        assert_eq!(
            step.to_json().to_string(),
            bulk.to_json().to_string(),
            "crash-faulted priority trials must replay across tiers"
        );
        assert!(
            step.failed > 0,
            "crash:3 must fail some died.is_empty() trials"
        );
    }

    #[test]
    fn bulk_campaign_accepts_free_targets_and_refuses_demotions() {
        let g = generators::gnp(
            20,
            0.2,
            &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(4),
        );
        let config = CampaignConfig::default().with_trials(200).with_seed(19);
        let labels = mis_labels();
        let check = |o: &Outcome<Vec<wb_graph::NodeId>>| matches!(o, Outcome::Success(s) if checks::is_rooted_mis(&g, s, 1));
        // SYNC target: same compose-at-write execution per schedule as the
        // native SIMSYNC run, so the whole report is byte-identical.
        let native = run_bulk_campaign(&MisGreedy::new(1), &g, &config, &labels, None, check)
            .expect("native model");
        let sync = run_bulk_campaign(
            &MisGreedy::new(1),
            &g,
            &config,
            &labels,
            Some(Model::Sync),
            check,
        )
        .expect("SYNC includes SIMSYNC");
        assert_eq!(native.to_json().to_string(), sync.to_json().to_string());
        // ASYNC target: the Lemma 4 activation chain executes in ID order
        // regardless of the sampled permutation, so every trial lands on the
        // one chain outcome.
        let r#async = run_bulk_campaign(
            &MisGreedy::new(1),
            &g,
            &config,
            &labels,
            Some(Model::Async),
            check,
        )
        .expect("ASYNC includes SIMSYNC");
        assert_eq!(r#async.verdict(), "PASS");
        assert_eq!(r#async.distinct_outcomes, 1);
        // Demotion is refused before any trial runs, with the structured
        // message from the runtime.
        let err = run_bulk_campaign(
            &MisGreedy::new(1),
            &g,
            &config,
            &labels,
            Some(Model::SimAsync),
            check,
        )
        .unwrap_err();
        assert!(err.contains("cannot demote SIMSYNC"), "{err}");
    }

    #[test]
    fn bulk_campaign_refuses_lossy_plans() {
        let g = generators::two_cliques(6);
        let config = CampaignConfig::default()
            .with_trials(10)
            .with_faults(Some(FaultPlan::lossy(1)));
        let err = run_bulk_campaign_with(
            &TwoCliques,
            &g,
            &config,
            &CampaignLabels::default(),
            None,
            |_, _| true,
        )
        .unwrap_err();
        assert!(err.contains("crash-stop"), "{err}");
        assert!(err.contains("lossy"), "{err}");
    }

    #[test]
    fn fingerprint128_separates_close_strings() {
        assert_ne!(fingerprint128("a"), fingerprint128("b"));
        assert_ne!(fingerprint128(""), fingerprint128("\0"));
        assert_ne!(
            fingerprint128("Success([1, 2])"),
            fingerprint128("Success([1, 2] )")
        );
        assert_eq!(fingerprint128("xyz"), fingerprint128("xyz"));
    }
}
