//! E-CAMPAIGN — Monte Carlo campaign throughput past the exhaustive
//! frontier (`BENCH_campaign.json`).
//!
//! The exhaustive explorer certifies the ∀-adversary quantifier up to
//! `n ≈ 8`; this experiment measures the statistical tier that replaces it
//! beyond: seeded schedule campaigns on instances with `n` up to 100,
//! hundreds of thousands of trials, throughput recorded per protocol ×
//! model × graph family. Campaigns over *correct* protocols must report
//! zero failures (a nonzero count here is a real finding, and the bin
//! fails loudly); a deliberately broken configuration (the Open Problem 3
//! ablation graph under the async BFS) exercises the failure → shrink
//! pipeline end to end.
//!
//! ```text
//! exp_campaign [--json PATH|-] [--baseline PATH] [--quick]
//! ```
//!
//! `--baseline` compares fresh trials/sec against a checked-in baseline and
//! fails on a ≥ 2× regression (a slower machine passes; a genuine 2×
//! regression does not). `--quick` divides trial counts by 10 for smoke
//! runs.

use std::time::Instant;
use wb_bench::json::{escape, Json};
use wb_bench::table::{banner, TablePrinter};
use wb_core::registry::{self, BoundOracle, ProtocolVisitor};
use wb_core::workload::graph_family;
use wb_core::AsyncBipartiteBfs;
use wb_graph::Graph;
use wb_runtime::adapt::Promote;
use wb_runtime::{Model, Protocol};
use wb_sim::{run_campaign, shrink_schedule, CampaignConfig, CampaignLabels, SamplerKind};

struct Row {
    protocol: String,
    model: String,
    family: String,
    n: usize,
    trials: u64,
    failures: u64,
    distinct_outcomes: u64,
    wall_sec: f64,
}

impl Row {
    fn trials_per_sec(&self) -> f64 {
        if self.wall_sec > 0.0 {
            self.trials as f64 / self.wall_sec
        } else {
            0.0
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"protocol\":{},\"model\":{},\"family\":{},\"n\":{},\"trials\":{},\
             \"failures\":{},\"distinct_outcomes\":{},\"wall_sec\":{:.9},\
             \"trials_per_sec\":{:.1}}}",
            escape(&self.protocol),
            escape(&self.model),
            escape(&self.family),
            self.n,
            self.trials,
            self.failures,
            self.distinct_outcomes,
            self.wall_sec,
            self.trials_per_sec(),
        )
    }
}

/// Registry visitor for one campaign row: resolves the protocol *and* its
/// oracle from `wb_core::registry` (no local oracle table to drift),
/// optionally promotes to a stronger model, and measures throughput.
struct Measure<'a> {
    label: &'a str,
    family: &'a str,
    n: usize,
    trials: u64,
    sampler: SamplerKind,
    /// `Some(m)`: run under the Lemma 4 promotion to `m`.
    target: Option<Model>,
}

impl Measure<'_> {
    fn drive<P>(&self, p: &P, g: &Graph, oracle: &BoundOracle<'_, P::Output>) -> Row
    where
        P: Protocol + Sync,
        P::Output: std::fmt::Debug,
    {
        let labels = CampaignLabels {
            protocol: self.label.into(),
            model: p.model().to_string(),
            family: self.family.into(),
        };
        let config = CampaignConfig::default()
            .with_trials(self.trials)
            .with_seed(0xC0FFEE)
            .with_sampler(self.sampler);
        let start = Instant::now();
        let report = run_campaign(p, g, &config, &labels, |o| oracle(o, &[]));
        let wall_sec = start.elapsed().as_secs_f64();
        assert_eq!(
            report.failed, 0,
            "{} on {} n={}: a correct protocol produced failing trials — \
             investigate before trusting the bench",
            self.label, self.family, self.n
        );
        Row {
            protocol: self.label.into(),
            model: labels.model,
            family: self.family.into(),
            n: self.n,
            trials: self.trials,
            failures: report.failed,
            distinct_outcomes: report.distinct_outcomes,
            wall_sec,
        }
    }
}

impl ProtocolVisitor for Measure<'_> {
    type Result = Row;
    fn visit<P, B>(self, protocol: P, bind: B) -> Row
    where
        P: Protocol + Clone + Send + Sync,
        P::Node: Send + Sync,
        P::Output: Clone + PartialEq + std::fmt::Debug + Send + Sync,
        B: for<'g> Fn(&'g Graph) -> BoundOracle<'g, P::Output> + Send + Sync,
    {
        let g = graph_family(self.family, self.n, 1).expect("known family");
        let oracle = bind(&g);
        match self.target {
            Some(m) => self.drive(&Promote::new(protocol, m), &g, &oracle),
            None => self.drive(&protocol, &g, &oracle),
        }
    }
}

fn measure_one(
    spec: &str,
    label: &str,
    family: &str,
    n: usize,
    trials: u64,
    sampler: SamplerKind,
    target: Option<Model>,
) -> Row {
    registry::dispatch(
        spec,
        n,
        Measure {
            label,
            family,
            n,
            trials,
            sampler,
            target,
        },
    )
    .expect("registered protocol")
}

fn measure_rows(quick: bool) -> Vec<Row> {
    let scale = |t: u64| if quick { (t / 10).max(1_000) } else { t };
    vec![
        // MIS at its native SIMSYNC model, mid-size instance.
        measure_one(
            "mis:1",
            "MIS(1)",
            "gnp:4",
            50,
            scale(200_000),
            SamplerKind::Uniform,
            None,
        ),
        // The acceptance-shaped row: MIS promoted to the free-synchronous
        // model at n = 100 — the regime the exhaustive tier cannot touch.
        measure_one(
            "mis:1",
            "MIS(1)@SYNC",
            "gnp:4",
            100,
            scale(100_000),
            SamplerKind::Uniform,
            Some(Model::Sync),
        ),
        // A crashy-sampler campaign: adversarially skewed schedules, same
        // oracle.
        measure_one(
            "mis:1",
            "MIS(1)+crashy",
            "gnp:4",
            50,
            scale(100_000),
            SamplerKind::Crashy,
            None,
        ),
        // BUILD exercises the heavy decode path (Newton power sums) per
        // trial.
        measure_one(
            "build:2",
            "BUILD(2)",
            "kdeg:2",
            40,
            scale(10_000),
            SamplerKind::Uniform,
            None,
        ),
        // EdgeCount: the cheapest protocol — an upper bound on raw engine
        // throughput at n = 100.
        measure_one(
            "edge-count",
            "EDGE-COUNT",
            "gnp:4",
            100,
            scale(100_000),
            SamplerKind::Uniform,
            None,
        ),
    ]
}

/// The failure → shrink pipeline on a protocol that genuinely fails: the
/// async (no-d₀) BFS deadlocks on every schedule of the triangle-with-tail
/// graph. Returns (witness length, shrunk length).
fn shrink_demo() -> (usize, usize) {
    let g = Graph::from_edges(5, &[(1, 2), (2, 3), (1, 3), (3, 4), (4, 5)]);
    let config = CampaignConfig::default().with_trials(2_000).with_seed(9);
    let labels = CampaignLabels {
        protocol: "async-bipartite-bfs".into(),
        model: "ASYNC".into(),
        family: "triangle-tail".into(),
    };
    let report = run_campaign(&AsyncBipartiteBfs, &g, &config, &labels, |o| o.is_success());
    assert_eq!(report.verdict(), "FAIL", "the ablation graph must deadlock");
    let witness = &report.witnesses[0];
    let shrunk = shrink_schedule(
        &AsyncBipartiteBfs,
        &g,
        &witness.schedule,
        |o| !o.is_success(),
        10_000,
    )
    .expect("witness fails, so it shrinks");
    assert!(shrunk.schedule.len() <= witness.schedule.len());
    (witness.schedule.len(), shrunk.schedule.len())
}

fn emit_json(rows: &[Row], path: &str) {
    let mut body = String::from("{\n  \"schema\": \"wb-bench/campaign/v1\",\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        body.push_str("    ");
        body.push_str(&row.to_json());
        body.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    body.push_str("  ]\n}\n");
    Json::parse(&body).expect("emitted JSON is well-formed");
    if path == "-" {
        print!("{body}");
    } else {
        std::fs::write(path, &body).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }
}

/// Gate: every baseline row with a matching (protocol, n) must not beat the
/// fresh measurement by more than 2×.
fn check_baseline(rows: &[Row], path: &str) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("baseline {path}: {e}"))?;
    let baseline_rows = doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("baseline has no rows array")?;
    let mut checked = 0;
    for b in baseline_rows {
        let (Some(protocol), Some(n), Some(base_tps)) = (
            b.get("protocol").and_then(Json::as_str),
            b.get("n").and_then(Json::as_f64),
            b.get("trials_per_sec").and_then(Json::as_f64),
        ) else {
            continue;
        };
        let Some(row) = rows
            .iter()
            .find(|r| r.protocol == protocol && r.n == n as usize)
        else {
            continue;
        };
        let fresh = row.trials_per_sec();
        println!(
            "baseline {protocol} n={n}: {fresh:.0} trials/sec vs baseline {base_tps:.0} ({:.2}x)",
            fresh / base_tps
        );
        if fresh * 2.0 < base_tps {
            return Err(format!(
                "{protocol} n={n}: {fresh:.0} trials/sec regressed more than 2x \
                 against the baseline {base_tps:.0}"
            ));
        }
        checked += 1;
    }
    if checked == 0 {
        return Err("baseline matched no measured rows".into());
    }
    println!("baseline gate passed ({checked} rows within 2x)");
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut quick = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json_path = Some(it.next().expect("--json expects a path").clone()),
            "--baseline" => {
                baseline_path = Some(it.next().expect("--baseline expects a path").clone())
            }
            "--quick" => quick = true,
            other => panic!("unknown flag '{other}'"),
        }
    }

    banner("Monte Carlo schedule campaigns: throughput past the exhaustive frontier");
    let rows = measure_rows(quick);
    let t = TablePrinter::new(
        &[
            "protocol",
            "model",
            "family",
            "n",
            "trials",
            "distinct",
            "trials/sec",
        ],
        &[14, 9, 7, 5, 9, 9, 12],
    );
    for row in &rows {
        t.row(&[
            row.protocol.clone(),
            row.model.clone(),
            row.family.clone(),
            format!("{}", row.n),
            format!("{}", row.trials),
            format!("{}", row.distinct_outcomes),
            format!("{:.0}", row.trials_per_sec()),
        ]);
    }

    banner("Failure injection → witness shrinking (Open Problem 3 ablation)");
    let (raw, shrunk) = shrink_demo();
    println!(
        "async BFS deadlock witness: {raw} picks sampled, {shrunk} after delta-debugging \
         (locally minimal, exactly replayable)"
    );

    if let Some(path) = &json_path {
        emit_json(&rows, path);
    }
    if let Some(path) = &baseline_path {
        if let Err(e) = check_baseline(&rows, path) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
