//! The computing-power lattice, end to end: a problem solvable one rung up
//! the hierarchy, the executable reduction showing why it falls one rung
//! down, and the Lemma 3 counting that closes the argument.
//!
//! Run with: `cargo run --release --example lattice_separations`

use rand::rngs::StdRng;
use rand::SeedableRng;
use shared_whiteboard::prelude::*;
use wb_math::counting::MessageRegime;
use wb_reductions::lemma3::{verdict, Family};
use wb_reductions::mis_to_build::MisToBuild;
use wb_reductions::oracles::MisFullRowOracle;

fn main() {
    let mut rng = StdRng::seed_from_u64(2015);

    // ── Upper bound: MIS is solvable in SIMSYNC[log n] (Theorem 5) ────────
    let g = wb_graph::generators::gnp(16, 0.3, &mut rng);
    let root = 4;
    let report = run(&MisGreedy::new(root), &g, &mut RandomAdversary::new(3));
    let mis = match report.outcome {
        Outcome::Success(s) => s,
        other => panic!("{other:?}"),
    };
    assert!(checks::is_rooted_mis(&g, &mis, root));
    println!("SIMSYNC[log n] solves rooted MIS: root {root}, set {mis:?}");

    // ── And by Lemma 4, in every stronger model ────────────────────────────
    for target in [Model::Async, Model::Sync] {
        let p = Promote::new(MisGreedy::new(root), target);
        let r = run(&p, &g, &mut RandomAdversary::new(4));
        assert!(matches!(r.outcome, Outcome::Success(ref s) if checks::is_rooted_mis(&g, s, root)));
        println!("  promoted to {target}: still a valid rooted MIS");
    }

    // ── Lower bound, step 1 (Theorem 6): a SIMASYNC MIS oracle ⇒ BUILD ────
    let hidden = wb_graph::generators::gnp(8, 0.5, &mut rng);
    let transform = MisToBuild::new(MisFullRowOracle::new);
    let r = run(&transform, &hidden, &mut RandomAdversary::new(5));
    match r.outcome {
        Outcome::Success(rebuilt) => {
            assert_eq!(rebuilt, hidden);
            println!(
                "Theorem 6 transformation: SIMASYNC MIS oracle rebuilt an arbitrary 8-node graph exactly"
            );
        }
        other => panic!("{other:?}"),
    }

    // ── Lower bound, step 2 (Lemma 3): BUILD-for-all-graphs cannot fit ────
    println!("\nLemma 3 capacity table (family: all graphs, 2^C(n,2) members):");
    println!(
        "{:>8} {:>12} {:>16} {:>16} {:>12}",
        "n", "f(n)", "required bits", "capacity bits", "verdict"
    );
    for n in [64u64, 256, 1024, 4096, 1 << 14] {
        for regime in [
            MessageRegime::LogN { c: 4 },
            MessageRegime::SqrtN,
            MessageRegime::Linear,
        ] {
            let v = verdict(Family::AllGraphs, n, regime);
            println!(
                "{:>8} {:>12} {:>16} {:>16} {:>12}",
                n,
                regime.name(),
                v.required_bits,
                v.capacity_bits,
                if v.impossible() { "IMPOSSIBLE" } else { "open" }
            );
        }
    }
    println!(
        "\n⇒ rooted MIS ∈ PSIMSYNC[log n] \\ PSIMASYNC[o(n)] — the first strict rung of Theorem 4."
    );
}
