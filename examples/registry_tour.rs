//! A tour of the protocol registry: every registered protocol, resolved by
//! name through `wb_core::registry` (the same table the CLI, the campaign
//! engine, the bulk tier, and the differential tests use), executed once on
//! an instance from its promise class and judged by its shared oracle.
//!
//! Bulk-capable protocols run a second time on the columnar bulk engine to
//! show the tier handoff: same spec string, same oracle, different engine.
//!
//! ```sh
//! cargo run --release --example registry_tour
//! ```

use shared_whiteboard::prelude::*;
use wb_core::registry::{self, BoundOracle, BulkVisitor, ProtocolVisitor};
use wb_runtime::bulk::{run_bulk, shuffled_schedule, BulkConfig};
use wb_runtime::BulkProtocol;

/// Pick a small instance inside the protocol's promise class.
fn instance_for(name: &str) -> Graph {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(42);
    match name {
        "build" | "build-mixed" => generators::k_degenerate(24, 2, true, &mut rng),
        "eob-bfs" => generators::even_odd_bipartite_connected(16, 0.25, &mut rng),
        "async-bipartite-bfs" => generators::bipartite_fixed(8, 8, 0.3, &mut rng),
        "two-cliques" | "two-cliques-rand" | "connectivity" => generators::two_cliques(6),
        "triangle" => generators::clique(5),
        "square" => generators::cycle(4),
        "diameter3" => generators::star(9),
        _ => generators::gnp(20, 0.2, &mut rng),
    }
}

/// One step-engine execution under a seeded random adversary, judged by the
/// registry oracle.
struct StepOnce<'a> {
    g: &'a Graph,
}

impl ProtocolVisitor for StepOnce<'_> {
    type Result = (String, bool);
    fn visit<P, B>(self, protocol: P, bind: B) -> (String, bool)
    where
        P: Protocol + Clone + Send + Sync,
        P::Node: Send + Sync,
        P::Output: Clone + PartialEq + std::fmt::Debug + Send + Sync,
        B: for<'g> Fn(&'g Graph) -> BoundOracle<'g, P::Output> + Send + Sync,
    {
        let oracle = bind(self.g);
        let report = run(&protocol, self.g, &mut RandomAdversary::new(7));
        let bits = report.max_message_bits();
        (
            format!("{} bits/msg, {} rounds", bits, report.write_order.len()),
            oracle(&report.outcome, &[]),
        )
    }
}

/// One bulk-engine execution on a seeded schedule, judged by the same
/// oracle.
struct BulkOnce<'a> {
    g: &'a Graph,
}

impl BulkVisitor for BulkOnce<'_> {
    type Result = bool;
    fn visit<P, B>(self, protocol: P, bind: B) -> bool
    where
        P: BulkProtocol + Send + Sync,
        P::Output: Clone + PartialEq + std::fmt::Debug + Send + Sync,
        B: for<'g> Fn(&'g Graph) -> BoundOracle<'g, P::Output> + Send + Sync,
    {
        let oracle = bind(self.g);
        let schedule = shuffled_schedule(self.g.n(), 7);
        let report = run_bulk(&protocol, self.g, &schedule, None, &BulkConfig::default())
            .expect("native model is always runnable");
        oracle(&report.outcome, &[])
    }
}

fn main() {
    println!("The protocol registry: one table, three execution tiers.\n");
    println!(
        "{:<22} {:<9} {:<20} {:<28} {:>5}",
        "spec", "model", "paper", "one run (step engine)", "bulk"
    );
    for info in registry::PROTOCOLS {
        let g = instance_for(info.name);
        let (summary, ok) =
            registry::dispatch(info.name, g.n(), StepOnce { g: &g }).expect("registered");
        assert!(ok, "{}: oracle rejected a promise-class run", info.name);
        let bulk_cell = if info.bulk {
            let ok = registry::dispatch_bulk(info.name, g.n(), BulkOnce { g: &g })
                .expect("bulk-capable");
            assert!(ok, "{}: bulk oracle rejected", info.name);
            "ok"
        } else {
            "—"
        };
        println!(
            "{:<22} {:<9} {:<20} {:<28} {:>5}",
            info.spec,
            info.model.to_string(),
            info.paper,
            summary,
            bulk_cell
        );
    }
    println!("\nEvery row resolved its protocol AND its correctness oracle from");
    println!("wb_core::registry — the CLI's explore/campaign/bulk commands, the");
    println!("campaign bench, and the differential tests all read the same table.");
}
