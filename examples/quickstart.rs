//! Quickstart: reconstruct a forest from one `O(log n)`-bit message per node.
//!
//! This is the paper's §3.1 protocol. Every node writes, with **no**
//! communication at all (`SIMASYNC`), the triple
//! `(ID, degree, Σ neighbor IDs)`; the referee prunes leaves off the board
//! until the whole forest is rebuilt.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use shared_whiteboard::prelude::*;

fn main() {
    let n = 1_000;
    let mut rng = StdRng::seed_from_u64(2012);
    let forest = wb_graph::generators::random_forest(n, 0.8, &mut rng);
    println!("input: random forest, n = {n}, m = {}", forest.m());

    let protocol = BuildDegenerate::forests(); // k = 1
    let report = run(&protocol, &forest, &mut RandomAdversary::new(7));
    let forest_msg_bits = report.max_message_bits();

    println!(
        "whiteboard: {} messages, {} bits total, largest message {} bits (budget {} bits)",
        report.write_order.len(),
        report.total_bits(),
        forest_msg_bits,
        protocol.budget_bits(n),
    );

    match report.outcome {
        Outcome::Success(Ok(rebuilt)) => {
            assert_eq!(rebuilt, forest);
            println!("reconstruction: EXACT ({} edges recovered)", rebuilt.m());
        }
        Outcome::Success(Err(e)) => println!("rejected: {e:?}"),
        Outcome::Deadlock { awake } => println!("deadlock, awake = {awake:?}"),
    }

    // The same protocol *recognizes* the class: feed it a cycle and it rejects.
    let cycle = wb_graph::generators::cycle(64);
    let report = run(&protocol, &cycle, &mut MinIdAdversary);
    match report.outcome {
        Outcome::Success(Err(BuildError::NotKDegenerate)) => {
            println!("cycle correctly rejected: not a forest (degeneracy 2 > 1)")
        }
        other => println!("unexpected: {other:?}"),
    }

    // Compare with the naive Θ(n)-bit baseline from the paper's introduction.
    let naive = NaiveBuild;
    let naive_report = run(&naive, &forest, &mut RandomAdversary::new(7));
    println!(
        "naive baseline: {} bits per message vs {} — a {:.1}× saving at n = {n}",
        naive_report.max_message_bits(),
        forest_msg_bits,
        naive_report.max_message_bits() as f64 / forest_msg_bits.max(1) as f64,
    );
}
