//! BFS forests from the whiteboard: the SYNC protocol on an arbitrary graph,
//! the ASYNC protocol on an even-odd-bipartite one, and the invalid-input
//! path.
//!
//! Shows the write order respecting layers, the edge-counting certificates at
//! work (no node of layer t+1 writes before layer t is complete), and the
//! component switches at min-ID unwritten nodes.
//!
//! Run with: `cargo run --release --example bfs_layers`

use rand::rngs::StdRng;
use rand::SeedableRng;
use shared_whiteboard::prelude::*;
use wb_core::bfs::BfsOutput;

fn show_forest(tag: &str, g: &Graph, f: &checks::BfsForest, order: &[NodeId]) {
    println!(
        "— {tag}: n = {}, m = {}, roots = {:?}",
        g.n(),
        g.m(),
        f.roots
    );
    let max_layer = f.layer.iter().copied().max().unwrap_or(0);
    for l in 0..=max_layer {
        let members: Vec<NodeId> = (1..=g.n() as NodeId)
            .filter(|&v| f.layer[v as usize - 1] == l)
            .collect();
        println!("  layer {l}: {members:?}");
    }
    println!("  write order: {order:?}");
    // Certificate sanity: every node writes after its parent.
    let pos: std::collections::HashMap<NodeId, usize> =
        order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    for v in 1..=g.n() as NodeId {
        if let Some(p) = f.parent[v as usize - 1] {
            assert!(pos[&p] < pos[&v], "layer discipline violated");
        }
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(31);

    // 1. SYNC BFS on an arbitrary (non-bipartite, multi-component) graph.
    let mut g = wb_graph::generators::gnp(14, 0.25, &mut rng);
    g.add_edge(1, 2); // make sure v1 is not isolated
    let g = g.disjoint_union(&wb_graph::generators::cycle(5));
    let report = run(&SyncBfs, &g, &mut RandomAdversary::new(5));
    let order = report.write_order.clone();
    match report.outcome {
        Outcome::Success(f) => {
            assert_eq!(f, checks::bfs_forest(&g));
            show_forest("SYNC BFS, arbitrary graph", &g, &f, &order);
        }
        other => panic!("{other:?}"),
    }

    // 2. ASYNC EOB-BFS on a valid even-odd-bipartite graph.
    let eob = wb_graph::generators::even_odd_bipartite_connected(15, 0.3, &mut rng);
    let report = run(&EobBfs, &eob, &mut RandomAdversary::new(6));
    let order = report.write_order.clone();
    match report.outcome {
        Outcome::Success(BfsOutput::Forest(f)) => {
            show_forest("ASYNC EOB-BFS, valid input", &eob, &f, &order)
        }
        other => panic!("{other:?}"),
    }

    // 3. The invalid path: plant an odd-odd edge; the protocol must terminate
    //    with a verdict instead of a forest (and never deadlock).
    let mut bad = eob.clone();
    bad.add_edge(1, 3);
    let report = run(&EobBfs, &bad, &mut RandomAdversary::new(7));
    match report.outcome {
        Outcome::Success(BfsOutput::NotEvenOddBipartite) => {
            println!(
                "— invalid input detected: odd-odd edge {{1,3}} caught, all {} nodes still wrote",
                report.write_order.len()
            );
        }
        other => panic!("{other:?}"),
    }

    // 4. The Open Problem 3 ablation: frozen (ASYNC) messages on a graph with
    //    an intra-layer edge above a deeper layer deadlock; SYNC succeeds.
    let hard = Graph::from_edges(5, &[(1, 2), (2, 3), (1, 3), (3, 4), (4, 5)]);
    let frozen = run(&AsyncBipartiteBfs, &hard, &mut MinIdAdversary);
    let synced = run(&SyncBfs, &hard, &mut MinIdAdversary);
    println!(
        "— ablation (triangle + tail): ASYNC ⇒ {:?}; SYNC ⇒ success = {}",
        matches!(frozen.outcome, Outcome::Deadlock { .. })
            .then_some("deadlock")
            .unwrap(),
        synced.outcome.is_success()
    );
}
