//! Dense graphs from logarithmic messages: the §3 closing extension.
//!
//! The plain Theorem 2 protocol handles sparse (bounded-degeneracy) graphs.
//! Its closing remark extends the power-sum trick to graphs whose elimination
//! order alternates *low* degree (≤ k) and *high* degree (≥ survivors−k−1) —
//! including dense graphs with Θ(n²) edges, reconstructed from O(k² log n)
//! bits per node. This example puts the two protocols side by side on a dense
//! complement-of-a-forest.
//!
//! Run with: `cargo run --release --example dense_reconstruction`

use rand::rngs::StdRng;
use rand::SeedableRng;
use shared_whiteboard::prelude::*;

fn main() {
    let n = 400;
    let k = 2;
    let mut rng = StdRng::seed_from_u64(4242);
    // Dense: the complement of a 2-degenerate graph. ~n²/2 edges.
    let sparse = wb_graph::generators::k_degenerate(n, k, true, &mut rng);
    let dense = sparse.complement();
    println!(
        "dense input: n = {n}, m = {} (density {:.2}), min degree {}",
        dense.m(),
        2.0 * dense.m() as f64 / (n * (n - 1)) as f64,
        dense.nodes().map(|v| dense.degree(v)).min().unwrap()
    );
    assert!(checks::mixed_elimination(&dense, k).is_some());

    // The plain degeneracy protocol must reject: degeneracy is ~n−k here.
    let plain = BuildDegenerate::new(k);
    let report = run(&plain, &dense, &mut RandomAdversary::new(1));
    match report.outcome {
        Outcome::Success(Err(BuildError::NotKDegenerate)) => {
            println!(
                "plain Theorem 2 protocol: rejected (degeneracy {} > {k})",
                checks::degeneracy(&dense).0
            )
        }
        other => panic!("{other:?}"),
    }

    // The mixed protocol reconstructs it, at 2× the (still logarithmic) bits.
    let mixed = BuildMixed::new(k);
    let report = run(&mixed, &dense, &mut RandomAdversary::new(2));
    let bits = report.max_message_bits();
    match report.outcome {
        Outcome::Success(Ok(h)) => {
            assert_eq!(h, dense);
            println!(
                "mixed protocol: rebuilt all {} edges from {bits} bits/node \
                 (naive row would cost {} bits/node — {:.1}× more)",
                h.m(),
                n + id_bits(n) as usize,
                (n + id_bits(n) as usize) as f64 / bits as f64
            );
        }
        other => panic!("{other:?}"),
    }
}
