//! The paper's motivating scenario: a massive call graph, processed with one
//! tiny message per phone number.
//!
//! "Nodes may represent phone numbers and links may indicate telephone calls."
//! Call graphs are sparse and low-degeneracy in practice; here we synthesize
//! one (a power-law-ish k-degenerate graph), let every node write its
//! `O(k² log n)`-bit power-sum sketch, and answer structural questions —
//! the full adjacency structure, triangle counts (social triads), degree
//! statistics — from the whiteboard alone.
//!
//! Run with: `cargo run --release --example phone_graph`

use rand::rngs::StdRng;
use rand::SeedableRng;
use shared_whiteboard::prelude::*;

fn main() {
    let n = 3_000;
    let k = 4; // degeneracy bound of the synthetic call graph
    let mut rng = StdRng::seed_from_u64(777);
    let calls = wb_graph::generators::k_degenerate(n, k, false, &mut rng);
    println!(
        "call graph: n = {n} numbers, m = {} calls, max degree {}, degeneracy {}",
        calls.m(),
        calls.max_degree(),
        checks::degeneracy(&calls).0
    );

    let protocol = BuildDegenerate::new(k);
    let t0 = std::time::Instant::now();
    let report = run(&protocol, &calls, &mut RandomAdversary::new(99));
    let elapsed_run = t0.elapsed();

    println!(
        "whiteboard: {} bits total ({} bits/node, budget {} bits/node), filled in {elapsed_run:.2?}",
        report.total_bits(),
        report.max_message_bits(),
        protocol.budget_bits(n)
    );

    assert!(report.outcome.is_success());
    // Re-run the referee's output function alone to time the decode step.
    let t1 = std::time::Instant::now();
    let rebuilt = protocol
        .output(n, &report.board)
        .expect("call graphs of degeneracy ≤ k must reconstruct");
    println!("referee decoded the graph in {:.2?}", t1.elapsed());
    assert_eq!(rebuilt, calls);

    // Downstream analytics on the reconstructed graph.
    let triads = checks::triangle_count(&rebuilt);
    let comps = checks::components(&rebuilt).len();
    println!("analytics from the board: {triads} call triangles, {comps} connected components");

    // What the naive approach would have cost.
    let naive_bits = n * (n + wb_math::id_bits(n) as usize);
    println!(
        "naive whole-neighborhood whiteboard: {naive_bits} bits — {:.0}× more than the {} bits used",
        naive_bits as f64 / report.board.total_bits() as f64,
        report.board.total_bits()
    );
}
