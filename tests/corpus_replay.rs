//! Regression corpus replay: every stored witness schedule must reproduce
//! its recorded outcome, deterministically, through the normal replay path
//! (`ScheduleAdversary` driving the engine).
//!
//! Fixtures live in `tests/corpus/*.ron`. They are captured from real
//! exploration failures by `regen_corpus_fixtures` below (`cargo test -- \
//! --ignored regen_corpus_fixtures` rewrites them); the checked-in set pins
//! one representative of each failure class the explorer can exhibit:
//! a deadlock witness and two schedule-dependent-output witnesses.

use shared_whiteboard::corpus::WitnessFixture;
use shared_whiteboard::prelude::*;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// All checked-in fixtures, sorted for deterministic order.
fn stored_fixtures() -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus must exist")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "ron"))
        .collect();
    paths.sort();
    paths
}

#[test]
fn stored_corpus_replays_deterministically() {
    let paths = stored_fixtures();
    assert!(
        paths.len() >= 3,
        "corpus unexpectedly empty: {paths:?} — run `cargo test -- --ignored regen_corpus_fixtures`"
    );
    for path in paths {
        let fixture = WitnessFixture::load(&path).unwrap_or_else(|e| panic!("{e}"));
        fixture
            .replay()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    }
}

#[test]
fn corpus_round_trips_from_a_live_exploration_failure() {
    // The full pipeline on a fresh failure: explore with a deliberately
    // wrong predicate ("MIS is always {1, 3}"), capture the witness,
    // serialize, parse back, replay — the recorded outcome must reproduce.
    let g = generators::path(4);
    let report = explore(
        &MisGreedy::new(1),
        &g,
        &ExploreConfig::default(),
        |o| matches!(o, Outcome::Success(s) if s == &vec![1, 3]),
    );
    let failure = report
        .failures
        .first()
        .expect("MIS output is schedule-dependent on a 4-path");
    let fixture = WitnessFixture::from_failure("live-round-trip", "mis:1", &g, failure);
    let parsed = WitnessFixture::parse(&fixture.to_ron()).expect("serializer output parses");
    assert_eq!(parsed, fixture);
    parsed.replay().expect("fresh witness replays");

    // And through the filesystem, like the checked-in corpus.
    let dir = std::env::temp_dir().join("wb-corpus-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("live_round_trip.ron");
    fixture.save(&path).unwrap();
    let loaded = WitnessFixture::load(&path).unwrap();
    assert_eq!(loaded, fixture);
    loaded.replay().expect("loaded witness replays");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn tampered_fixture_is_rejected_on_replay() {
    // Change the expectation out from under a valid schedule: replay must
    // report the mismatch rather than silently pass.
    let g = generators::path(4);
    let report = explore(
        &MisGreedy::new(1),
        &g,
        &ExploreConfig::default(),
        |o| matches!(o, Outcome::Success(s) if s == &vec![1, 3]),
    );
    let failure = report.failures.first().expect("witness exists");
    let mut fixture = WitnessFixture::from_failure("tampered", "mis:1", &g, failure);
    fixture.expect = shared_whiteboard::corpus::ExpectedOutcome::Output("[2, 4]".into());
    let err = fixture.replay().expect_err("mismatch must be detected");
    assert!(err.contains("did not reproduce"), "{err}");
}

/// Regenerate the checked-in fixtures from live exploration failures.
/// Ignored by default: run explicitly when witness formats or protocol
/// semantics change intentionally.
#[test]
#[ignore = "rewrites tests/corpus; run explicitly"]
fn regen_corpus_fixtures() {
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).unwrap();

    // 1. Deadlock class: the asynchronous (no-d₀) bipartite BFS on a
    //    triangle with a tail deadlocks on every schedule (Open Problem 3
    //    ablation) — capture the first witness.
    let g = Graph::from_edges(5, &[(1, 2), (2, 3), (1, 3), (3, 4), (4, 5)]);
    let report = explore(&AsyncBipartiteBfs, &g, &ExploreConfig::default(), |o| {
        o.is_success()
    });
    let failure = report.failures.first().expect("every schedule deadlocks");
    WitnessFixture::from_failure(
        "async-bfs-triangle-tail-deadlock",
        "async-bipartite-bfs",
        &g,
        failure,
    )
    .save(&dir.join("async_bfs_triangle_tail_deadlock.ron"))
    .unwrap();

    // 2. Schedule-dependent output, MIS: on a 4-path rooted at 1 both
    //    {1, 3} and {1, 4} are reachable rooted MIS outputs; pin a schedule
    //    that does NOT produce the min-ID answer.
    let g = generators::path(4);
    let min_id = run(&MisGreedy::new(1), &g, &mut MinIdAdversary)
        .outcome
        .unwrap();
    let report = explore(
        &MisGreedy::new(1),
        &g,
        &ExploreConfig::default(),
        |o| matches!(o, Outcome::Success(s) if s == &min_id),
    );
    let failure = report.failures.first().expect("MIS is schedule-dependent");
    WitnessFixture::from_failure("mis-schedule-dependence", "mis:1", &g, failure)
        .save(&dir.join("mis_schedule_dependence.ron"))
        .unwrap();

    // 3. Protocol-level rejection: BUILD with k = 1 on a 4-cycle
    //    (degeneracy 2) must answer `Err` on every schedule — pin the exact
    //    rejection rendering so decoder drift is caught.
    let g = generators::cycle(4);
    let report = explore(
        &BuildDegenerate::new(1),
        &g,
        &ExploreConfig::default(),
        |o| matches!(o, Outcome::Success(Ok(_))),
    );
    let failure = report
        .failures
        .first()
        .expect("BUILD must reject a graph above its degeneracy bound");
    WitnessFixture::from_failure("build-k1-rejects-cycle", "build:1", &g, failure)
        .save(&dir.join("build_k1_rejects_cycle.ron"))
        .unwrap();
}

#[test]
fn stored_corpus_reverifies_through_wb_verify() {
    // Beyond the engine replay above, every checked-in witness must also
    // strict-replay through the independent verifier's machine: corpus
    // fixtures are standalone `wb-cert/v1` witnesses (their `format` field
    // says so), so the trust argument of `docs/CERTIFICATES.md` extends to
    // them — a fixture that only the engine can reproduce would be
    // evidence of semantics drift between producer and checker.
    for path in stored_fixtures() {
        let fixture = WitnessFixture::load(&path).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(fixture.format, wb_runtime::certificate::FORMAT);
        let expect = match &fixture.expect {
            shared_whiteboard::corpus::ExpectedOutcome::Deadlock { awake } => {
                wb_verify::ExpectedWitness::Deadlock {
                    awake: awake.clone(),
                }
            }
            shared_whiteboard::corpus::ExpectedOutcome::Output(debug) => {
                wb_verify::ExpectedWitness::Output(debug.clone())
            }
        };
        wb_verify::verify_witness(
            &fixture.protocol,
            fixture.n,
            &fixture.edges,
            &fixture.schedule,
            &expect,
        )
        .unwrap_or_else(|e| panic!("{}: wb-verify rejected the witness: {e}", path.display()));
    }
}
