//! The statistical tier against the exhaustive tier: Monte Carlo campaigns
//! (`wb-sim`) cross-checked with the schedule-space explorer, plus the
//! campaign report's determinism golden test and the failure → shrink →
//! corpus pipeline.
//!
//! Soundness anchor (mirroring `tests/differential.rs`): a campaign samples
//! the schedule space the explorer enumerates, so on small instances its
//! outcome set must be a **subset** of the explorer's — any outcome the
//! sampler reaches that the explorer did not would mean one of the two
//! tiers executes the machine wrong. For **simultaneous** models every
//! permutation of the nodes is a reachable schedule, so a fixed-seed
//! campaign with enough trials saturates the outcome set and the inclusion
//! tightens to **equality** (`10_000` trials vs `4! = 24` orders at
//! `n ≤ 4`; the `n = 5` spot checks keep 10k trials against `5! = 120`).

use shared_whiteboard::par::{par_drain, WorkQueue};
use shared_whiteboard::prelude::*;
use std::collections::BTreeSet;
use std::fmt::Debug;
use wb_sim::{run_campaign, shrink_schedule, CampaignConfig, CampaignLabels, SamplerKind};

/// All graphs on `1..=n` nodes.
fn graphs_up_to(n: usize) -> impl Iterator<Item = Graph> {
    (1..=n).flat_map(enumerate::all_graphs)
}

/// Spread `check` over every graph up to `n` nodes across the pool.
fn for_all_graphs_parallel(n: usize, check: impl Fn(&Graph) + Sync) {
    let count = (1..=n).map(enumerate::count_all).sum::<u64>() as usize;
    let queue = WorkQueue::bounded(count);
    for g in graphs_up_to(n) {
        queue.push(g).expect("queue sized to hold every graph");
    }
    par_drain(&queue, |g, _| check(&g));
}

/// A sequential-inside campaign (one batch — the graphs are already spread
/// across the pool) returning the full outcome set; asserts the set never
/// overflowed and that no trial failed `check`.
fn campaign_outcomes<P, C>(p: &P, g: &Graph, trials: u64, check: C) -> BTreeSet<String>
where
    P: Protocol + Sync,
    P::Output: Debug,
    C: Fn(&Outcome<P::Output>) -> bool + Sync,
{
    let config = CampaignConfig::default()
        .with_trials(trials)
        .with_seed(0xD1FF_5EED)
        .with_batch(trials as usize);
    let report = run_campaign(p, g, &config, &CampaignLabels::default(), check);
    assert_eq!(
        report.failed, 0,
        "campaign found a failing schedule on {g:?} — the explorer should have too"
    );
    report
        .outcome_set
        .unwrap_or_else(|| panic!("outcome set overflowed on {g:?}"))
        .into_iter()
        .collect()
}

/// The explorer's exact outcome set (canonical dedup, no truncation).
fn explorer_outcomes<P>(p: &P, g: &Graph) -> BTreeSet<String>
where
    P: Protocol,
    P::Output: Clone + Debug,
{
    let report = explore(p, g, &ExploreConfig::default(), |_| true);
    assert!(!report.truncated, "explorer truncated on {g:?}");
    report.outcomes.iter().map(|o| format!("{o:?}")).collect()
}

/// Subset always; equality when the model is simultaneous (the campaign
/// saturates the permutation space at these sizes).
fn assert_campaign_vs_explorer<P>(p: &P, g: &Graph, trials: u64, label: &str)
where
    P: Protocol + Sync,
    P::Output: Clone + Debug,
{
    let exhaustive = explorer_outcomes(p, g);
    let sampled = campaign_outcomes(p, g, trials, |_| true);
    assert!(
        sampled.is_subset(&exhaustive),
        "{label}: campaign reached outcomes the explorer missed on {g:?}: {:?}",
        sampled.difference(&exhaustive).collect::<Vec<_>>()
    );
    if p.model().is_simultaneous() {
        assert_eq!(
            sampled, exhaustive,
            "{label}: campaign failed to saturate a simultaneous model on {g:?}"
        );
    }
}

#[test]
fn campaign_outcomes_subset_explorer_for_mis_all_models_up_to_n4() {
    // The headline anchor: MIS (SIMSYNC-native) under every model it runs
    // in, 10k-trial campaigns on every labeled graph up to n = 4.
    for_all_graphs_parallel(4, |g| {
        for target in Model::ALL
            .into_iter()
            .filter(|t| t.includes(Model::SimSync))
        {
            let p = Promote::new(MisGreedy::new(1), target);
            assert_campaign_vs_explorer(&p, g, 10_000, &format!("MIS@{target}"));
        }
    });
}

#[test]
fn campaign_outcomes_subset_explorer_for_build_all_four_models_up_to_n4() {
    // BUILD is SIMASYNC-native, hence runs under all four models. Its
    // output is order-oblivious (the outcome set is typically a singleton),
    // so this pins the *engine* semantics of the promotion adapters under
    // sampling; trials are scaled down because each trial pays the Newton
    // decode.
    for_all_graphs_parallel(4, |g| {
        for target in Model::ALL {
            let p = Promote::new(BuildDegenerate::new(2), target);
            assert_campaign_vs_explorer(&p, g, 1_500, &format!("BUILD@{target}"));
        }
    });
}

#[test]
fn campaign_outcomes_match_explorer_on_n5_spot_checks() {
    // n = 5 spot checks at the issue's 10k-trial strength (5! = 120
    // schedules): named graphs with rich schedule-dependence rather than
    // the full 1024-graph sweep, which belongs to the (release-built)
    // campaign smoke in CI.
    let graphs = [
        generators::path(5),
        generators::cycle(5),
        generators::clique(5),
        generators::star(5),
        Graph::from_edges(5, &[(1, 2), (2, 3), (1, 3), (3, 4), (4, 5)]),
    ];
    let queue = WorkQueue::bounded(graphs.len() * 3);
    for g in graphs {
        for target in Model::ALL
            .into_iter()
            .filter(|t| t.includes(Model::SimSync))
        {
            queue.push((g.clone(), target)).unwrap();
        }
    }
    par_drain(&queue, |(g, target), _| {
        let p = Promote::new(MisGreedy::new(1), target);
        assert_campaign_vs_explorer(&p, &g, 10_000, &format!("MIS@{target} n=5"));
    });
}

#[test]
fn campaign_honors_the_oracle_predicate_like_the_explorer() {
    // Same predicate, both tiers: the explorer proves MIS's oracle for all
    // schedules, so a campaign classifying with the oracle must count zero
    // failures.
    for g in [generators::path(6), generators::clique(4)] {
        let config = CampaignConfig::default().with_trials(5_000).with_seed(3);
        let report = run_campaign(
            &MisGreedy::new(1),
            &g,
            &config,
            &CampaignLabels::default(),
            |o| matches!(o, Outcome::Success(s) if checks::is_rooted_mis(&g, s, 1)),
        );
        assert_eq!(report.verdict(), "PASS");
        assert_eq!(report.passed, report.trials);
    }
}

// ---------------------------------------------------------------------------
// Seed-stability golden test
// ---------------------------------------------------------------------------

/// The fixed campaign the golden file pins: every knob explicit so an
/// accidental default change cannot silently rewrite the golden.
fn golden_campaign(batch: usize) -> wb_sim::CampaignReport {
    let g = generators::path(6);
    let config = CampaignConfig {
        trials: 4_000,
        seed: 0xCAFE_BABE,
        sampler: SamplerKind::Uniform,
        batch,
        outcome_cap: 64,
        witness_cap: 8,
        faults: None,
    };
    let labels = CampaignLabels {
        protocol: "mis:1".into(),
        model: "SIMSYNC".into(),
        family: "path".into(),
    };
    // Predicate "output is the min-ID reference" fails on most schedules,
    // so the golden also pins witness selection and ordering.
    let reference = wb_runtime::run(&MisGreedy::new(1), &g, &mut MinIdAdversary)
        .outcome
        .unwrap();
    run_campaign(
        &MisGreedy::new(1),
        &g,
        &config,
        &labels,
        move |o| matches!(o, Outcome::Success(s) if *s == reference),
    )
}

#[test]
fn campaign_report_json_is_byte_stable_across_runs_and_sharding() {
    let golden_path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/campaign_report.json");
    let golden = std::fs::read_to_string(&golden_path)
        .expect("golden file checked in (regen: cargo test -- --ignored regen_campaign_golden)");
    // Sequential (one batch), default-grain parallel, and adversarially
    // small batches must all produce byte-identical JSON — aggregation is a
    // commutative monoid, so sharding and thread interleaving cannot leak
    // into the report.
    for batch in [4_000, 1_024, 64, 17] {
        let rendered = format!("{}\n", golden_campaign(batch).to_json());
        assert_eq!(
            rendered, golden,
            "campaign JSON drifted from the golden at batch = {batch}"
        );
    }
}

/// Rewrite the golden file. Ignored by default; run explicitly when the
/// report schema changes intentionally.
#[test]
#[ignore = "rewrites tests/golden; run explicitly"]
fn regen_campaign_golden() {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    std::fs::create_dir_all(&dir).unwrap();
    let rendered = format!("{}\n", golden_campaign(1_024).to_json());
    std::fs::write(dir.join("campaign_report.json"), rendered).unwrap();
}

// ---------------------------------------------------------------------------
// Failure injection → shrink → corpus (the full statistical pipeline)
// ---------------------------------------------------------------------------

/// The Open Problem 3 ablation graph: the async (no-d₀) bipartite BFS
/// deadlocks on every schedule of the triangle-with-tail.
fn ablation_graph() -> Graph {
    Graph::from_edges(5, &[(1, 2), (2, 3), (1, 3), (3, 4), (4, 5)])
}

#[test]
fn injected_failure_shrinks_to_a_replayable_corpus_witness() {
    let g = ablation_graph();
    let config = CampaignConfig::default().with_trials(2_000).with_seed(7);
    let report = run_campaign(
        &AsyncBipartiteBfs,
        &g,
        &config,
        &CampaignLabels::default(),
        |o| o.is_success(),
    );
    assert_eq!(report.verdict(), "FAIL", "the ablation graph must deadlock");
    let witness = report.witnesses.first().expect("witnesses recorded");
    let shrunk = shrink_schedule(
        &AsyncBipartiteBfs,
        &g,
        &witness.schedule,
        |o| !o.is_success(),
        10_000,
    )
    .expect("failing witnesses shrink");
    assert!(shrunk.schedule.len() <= witness.schedule.len());

    // The minimal schedule becomes a corpus fixture and replays through the
    // normal corpus machinery (strict ScheduleAdversary, recorded outcome).
    use shared_whiteboard::corpus::WitnessFixture;
    let replayed = wb_runtime::run(
        &AsyncBipartiteBfs,
        &g,
        &mut ScheduleAdversary::new(shrunk.schedule.clone()),
    );
    assert!(!replayed.outcome.is_success());
    let failure = ScheduleFailure {
        schedule: shrunk.schedule.clone(),
        died: Vec::new(),
        outcome: replayed.outcome,
    };
    let fixture = WitnessFixture::from_failure(
        "campaign-pipeline-test",
        "async-bipartite-bfs",
        &g,
        &failure,
    );
    let parsed = WitnessFixture::parse(&fixture.to_ron()).expect("serializes");
    assert_eq!(parsed, fixture);
    parsed.replay().expect("shrunk witness replays");
}

#[test]
fn crashy_campaigns_stay_sound_against_the_explorer() {
    // The adaptive sampler skews the distribution, never the support: its
    // outcome set is still a subset of the exhaustive one.
    let g = generators::path(5);
    let exhaustive = explorer_outcomes(&MisGreedy::new(1), &g);
    let config = CampaignConfig::default()
        .with_trials(4_000)
        .with_seed(13)
        .with_sampler(SamplerKind::Crashy);
    let report = run_campaign(
        &MisGreedy::new(1),
        &g,
        &config,
        &CampaignLabels::default(),
        |_| true,
    );
    let sampled: BTreeSet<String> = report
        .outcome_set
        .expect("small instance")
        .into_iter()
        .collect();
    assert!(sampled.is_subset(&exhaustive));
}

/// Regenerate the checked-in campaign-shrunk corpus fixture. Ignored by
/// default (mirrors `regen_corpus_fixtures` in `corpus_replay.rs`).
#[test]
#[ignore = "rewrites tests/corpus; run explicitly"]
fn regen_campaign_corpus_fixture() {
    let g = ablation_graph();
    let config = CampaignConfig::default().with_trials(2_000).with_seed(7);
    let report = run_campaign(
        &AsyncBipartiteBfs,
        &g,
        &config,
        &CampaignLabels::default(),
        |o| o.is_success(),
    );
    let witness = report.witnesses.first().expect("witnesses recorded");
    let shrunk = shrink_schedule(
        &AsyncBipartiteBfs,
        &g,
        &witness.schedule,
        |o| !o.is_success(),
        10_000,
    )
    .expect("failing witnesses shrink");
    let replayed = wb_runtime::run(
        &AsyncBipartiteBfs,
        &g,
        &mut ScheduleAdversary::new(shrunk.schedule.clone()),
    );
    let failure = ScheduleFailure {
        schedule: shrunk.schedule,
        died: Vec::new(),
        outcome: replayed.outcome,
    };
    let fixture = campaign_fixture(&g, &failure);
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    fixture
        .save(&dir.join("campaign_shrunk_async_bfs_deadlock.ron"))
        .unwrap();
}

/// Helper kept out of the test body so the fixture name/protocol stay in
/// one place.
fn campaign_fixture(
    g: &Graph,
    failure: &ScheduleFailure<checks::BfsForest>,
) -> shared_whiteboard::corpus::WitnessFixture {
    shared_whiteboard::corpus::WitnessFixture::from_failure(
        "campaign-shrunk-async-bfs-deadlock",
        "async-bipartite-bfs",
        g,
        failure,
    )
}
