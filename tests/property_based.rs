//! Cross-crate property tests: protocol outputs against reference oracles on
//! randomized instances, schedules and parameters.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shared_whiteboard::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// BUILD round-trips on random k-degenerate graphs under random
    /// adversaries, and the Lemma 1 bit bound holds.
    #[test]
    fn build_round_trips(n in 1usize..40, k in 1usize..5, seed in any::<u64>(), exact in any::<bool>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = wb_graph::generators::k_degenerate(n, k, exact, &mut rng);
        let p = BuildDegenerate::new(k);
        let report = run(&p, &g, &mut RandomAdversary::new(seed ^ 0xABCD));
        let bound = (k * (k + 1) + 2) * id_bits(n) as usize;
        prop_assert!(report.max_message_bits() <= bound);
        match report.outcome {
            Outcome::Success(Ok(h)) => prop_assert_eq!(h, g),
            other => return Err(TestCaseError::fail(format!("{other:?}"))),
        }
    }

    /// The SYNC BFS forest equals the deterministic reference forest no
    /// matter the adversary (Theorem 10).
    #[test]
    fn sync_bfs_matches_reference(n in 1usize..28, p_edge in 0.0f64..0.5, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = wb_graph::generators::gnp(n, p_edge, &mut rng);
        let report = run(&SyncBfs, &g, &mut RandomAdversary::new(seed ^ 0x1234));
        match report.outcome {
            Outcome::Success(f) => prop_assert_eq!(f, checks::bfs_forest(&g)),
            other => return Err(TestCaseError::fail(format!("{other:?}"))),
        }
    }

    /// MIS outputs are always maximal independent sets containing the root
    /// (Theorem 5).
    #[test]
    fn mis_is_always_valid(n in 1usize..30, p_edge in 0.0f64..0.6, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = wb_graph::generators::gnp(n, p_edge, &mut rng);
        let root = (seed % n as u64 + 1) as NodeId;
        let report = run(&MisGreedy::new(root), &g, &mut RandomAdversary::new(seed ^ 0x77));
        match report.outcome {
            Outcome::Success(set) => prop_assert!(checks::is_rooted_mis(&g, &set, root)),
            other => return Err(TestCaseError::fail(format!("{other:?}"))),
        }
    }

    /// EOB-BFS: forest on valid inputs, NotEvenOddBipartite on invalid ones,
    /// never a deadlock (Theorem 7 + the drain completion).
    #[test]
    fn eob_bfs_total_on_all_inputs(n in 1usize..24, p_edge in 0.0f64..0.4, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = wb_graph::generators::gnp(n, p_edge, &mut rng);
        let report = run(&EobBfs, &g, &mut RandomAdversary::new(seed ^ 0x55));
        match report.outcome {
            Outcome::Success(wb_core::bfs::BfsOutput::Forest(f)) => {
                prop_assert!(checks::is_even_odd_bipartite(&g));
                prop_assert_eq!(f, checks::bfs_forest(&g));
            }
            Outcome::Success(wb_core::bfs::BfsOutput::NotEvenOddBipartite) => {
                prop_assert!(!checks::is_even_odd_bipartite(&g));
            }
            Outcome::Deadlock { awake } => {
                return Err(TestCaseError::fail(format!("deadlock: {awake:?}")));
            }
        }
    }

    /// SUBGRAPH_f recovers exactly the prefix-induced subgraph.
    #[test]
    fn subgraph_prefix_is_exact(n in 2usize..30, f in 1usize..30, p_edge in 0.0f64..0.7, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = wb_graph::generators::gnp(n, p_edge, &mut rng);
        let p = SubgraphPrefix::new(f);
        let report = run(&p, &g, &mut RandomAdversary::new(seed ^ 0x99));
        match report.outcome {
            Outcome::Success(h) => prop_assert_eq!(h, g.induced_prefix(f.min(n))),
            other => return Err(TestCaseError::fail(format!("{other:?}"))),
        }
    }

    /// The mixed (low-or-high) BUILD protocol round-trips on its class —
    /// including dense complements — at twice the plain budget.
    #[test]
    fn build_mixed_round_trips(n in 1usize..26, k in 1usize..4, seed in any::<u64>(), complement in any::<bool>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = {
            let base = wb_graph::generators::mixed_low_high(n, k, &mut rng);
            if complement { base.complement() } else { base }
        };
        // The class is closed under complement (low ↔ high swap).
        prop_assert!(checks::mixed_elimination(&g, k).is_some());
        let p = BuildMixed::new(k);
        let report = run(&p, &g, &mut RandomAdversary::new(seed ^ 0x42));
        match report.outcome {
            Outcome::Success(Ok(h)) => prop_assert_eq!(h, g),
            other => return Err(TestCaseError::fail(format!("{other:?}"))),
        }
    }

    /// Connectivity and spanning-forest protocols agree with each other and
    /// with the oracles.
    #[test]
    fn connectivity_and_spanning_agree(n in 1usize..24, p_edge in 0.0f64..0.4, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = wb_graph::generators::gnp(n, p_edge, &mut rng);
        let conn = match run(&ConnectivitySync, &g, &mut RandomAdversary::new(seed)).outcome {
            Outcome::Success(c) => c,
            other => return Err(TestCaseError::fail(format!("{other:?}"))),
        };
        let sf = match run(&SpanningForestSync, &g, &mut RandomAdversary::new(seed)).outcome {
            Outcome::Success(s) => s,
            other => return Err(TestCaseError::fail(format!("{other:?}"))),
        };
        prop_assert_eq!(conn.connected, checks::is_connected(&g));
        prop_assert_eq!(conn.components, sf.roots.len());
        prop_assert_eq!(sf.edges.len(), n - conn.components);
    }

    /// EdgeCount equals m on arbitrary graphs under arbitrary adversaries.
    #[test]
    fn edge_count_is_exact(n in 1usize..40, p_edge in 0.0f64..1.0, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = wb_graph::generators::gnp(n, p_edge, &mut rng);
        let report = run(&EdgeCount, &g, &mut RandomAdversary::new(seed ^ 0x11));
        prop_assert_eq!(report.outcome, Outcome::Success(g.m()));
    }

    /// Runs are deterministic given the adversary seed: same seed → identical
    /// write order and board.
    #[test]
    fn runs_are_reproducible(n in 1usize..20, p_edge in 0.0f64..0.5, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = wb_graph::generators::gnp(n, p_edge, &mut rng);
        let a = run(&SyncBfs, &g, &mut RandomAdversary::new(seed));
        let b = run(&SyncBfs, &g, &mut RandomAdversary::new(seed));
        prop_assert_eq!(a.write_order, b.write_order);
        prop_assert_eq!(a.board, b.board);
    }

    /// SIMASYNC messages are order-oblivious: the multiset of messages on the
    /// final board is the same under any two adversaries.
    #[test]
    fn simasync_boards_are_permutations(n in 1usize..20, k in 1usize..4, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = wb_graph::generators::k_degenerate(n, k, false, &mut rng);
        let p = BuildDegenerate::new(k);
        let a = run(&p, &g, &mut MinIdAdversary);
        let b = run(&p, &g, &mut MaxIdAdversary);
        let mut ma: Vec<_> = a.board.entries().iter().map(|e| (e.writer, e.msg.clone())).collect();
        let mut mb: Vec<_> = b.board.entries().iter().map(|e| (e.writer, e.msg.clone())).collect();
        ma.sort_by_key(|(w, _)| *w);
        mb.sort_by_key(|(w, _)| *w);
        prop_assert_eq!(ma, mb);
    }

    /// Every successful run writes exactly n messages, one per node.
    #[test]
    fn exactly_one_message_per_node(n in 1usize..20, p_edge in 0.0f64..0.6, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = wb_graph::generators::gnp(n, p_edge, &mut rng);
        let report = run(&SyncBfs, &g, &mut RandomAdversary::new(seed));
        prop_assert!(report.outcome.is_success());
        let mut writers: Vec<NodeId> = report.write_order.clone();
        writers.sort_unstable();
        writers.dedup();
        prop_assert_eq!(writers.len(), n);
    }

    /// Engine snapshot/restore round-trips exactly: drive a random schedule
    /// prefix (as the explorer's frontier does), snapshot via `Clone`, run
    /// both copies through the identical continuation, and demand
    /// bit-identical boards, write orders and canonical states at every
    /// step. This is the invariant that lets the explorer park
    /// configurations in a frontier and resume them later.
    #[test]
    fn engine_snapshot_restore_round_trips(n in 2usize..9, p_edge in 0.0f64..0.7, seed in any::<u64>(), prefix in 0usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = wb_graph::generators::gnp(n, p_edge, &mut rng);
        let mut engine = Engine::new(&SyncBfs, &g);
        engine.activation_phase();
        // Random schedule prefix.
        let mut picks = StdRng::seed_from_u64(seed ^ 0xD1FF);
        for _ in 0..prefix {
            let active = engine.active_set();
            if active.is_empty() { break; }
            engine.step(active[picks.gen_range(0..active.len())]);
            engine.activation_phase();
        }
        // Snapshot, then drive both copies with the same continuation.
        let mut restored = engine.clone();
        prop_assert_eq!(engine.canonical_state(), restored.canonical_state());
        loop {
            let active = engine.active_set();
            prop_assert_eq!(active.clone(), restored.active_set());
            if active.is_empty() { break; }
            let pick = active[picks.gen_range(0..active.len())];
            engine.step(pick);
            engine.activation_phase();
            restored.step(pick);
            restored.activation_phase();
            prop_assert_eq!(engine.write_order(), restored.write_order());
            prop_assert_eq!(engine.board(), restored.board());
            prop_assert_eq!(engine.canonical_state(), restored.canonical_state());
        }
        let a = engine.finish();
        let b = restored.finish();
        prop_assert_eq!(a.outcome, b.outcome);
        prop_assert_eq!(a.write_order, b.write_order);
    }

    /// Undo-log branching is exact: random interleavings of step/undo (with
    /// nested savepoints, as the explorer and the naive DFS drive them)
    /// restore the canonical state — exact mode, full encodings — the
    /// fingerprint, the write order, and the board, at every unwind level.
    /// Run across the model lattice: SYNC (free activation), ASYNC (freeze
    /// slots + drain), SIMSYNC and SIMASYNC (simultaneous).
    #[test]
    fn undo_log_restores_canonical_state(n in 2usize..8, p_edge in 0.0f64..0.7, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = wb_graph::generators::gnp(n, p_edge, &mut rng);
        macro_rules! check_protocol {
            ($p:expr) => {{
                let p = $p;
                let mut picks = StdRng::seed_from_u64(seed ^ 0xBEEF);
                let mut engine = Engine::new(&p, &g);
                engine.activation_phase();
                // Stack of (token, snapshot-before) savepoints.
                let mut stack = Vec::new();
                for _ in 0..32 {
                    let can_step = !engine.active_set().is_empty();
                    let push = can_step && (stack.is_empty() || picks.gen_bool(0.6));
                    if push {
                        let before = (
                            engine.canonical_state(),
                            engine.canonical_fingerprint(),
                            engine.write_order().to_vec(),
                            engine.board().clone(),
                        );
                        let token = engine.step_token();
                        let active = engine.active_set();
                        engine.step(active[picks.gen_range(0..active.len())]);
                        engine.activation_phase();
                        stack.push((token, before));
                    } else if let Some((token, before)) = stack.pop() {
                        engine.undo(token);
                        prop_assert_eq!(engine.canonical_state(), before.0);
                        prop_assert_eq!(engine.canonical_fingerprint(), before.1);
                        prop_assert_eq!(engine.write_order().to_vec(), before.2);
                        prop_assert_eq!(engine.board().clone(), before.3);
                    } else {
                        break;
                    }
                }
                // Unwind whatever is left, checking every level.
                while let Some((token, before)) = stack.pop() {
                    engine.undo(token);
                    prop_assert_eq!(engine.canonical_state(), before.0);
                    prop_assert_eq!(engine.canonical_fingerprint(), before.1);
                }
            }};
        }
        check_protocol!(SyncBfs);
        check_protocol!(EobBfs);
        check_protocol!(MisGreedy::new(1));
        check_protocol!(BuildDegenerate::new(n));
    }

    /// Shrinker contract on randomized instances (wb-sim): the minimized
    /// schedule still fails under strict replay, is never longer than the
    /// witness it started from, and shrinking is fully deterministic.
    #[test]
    fn shrinker_minimizes_deterministically(n in 3usize..8, p_edge in 0.0f64..0.7, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = wb_graph::generators::gnp(n, p_edge, &mut rng);
        let p = MisGreedy::new(1);
        // Failure predicate with guaranteed-replayable failures: "the output
        // is the min-ID reference answer" fails for every schedule that
        // reaches a different MIS.
        let reference = run(&p, &g, &mut MinIdAdversary).outcome.unwrap();
        let is_failure =
            |o: &Outcome<Vec<NodeId>>| !matches!(o, Outcome::Success(s) if *s == reference);
        // Hunt for a failing schedule; graphs with a unique reachable MIS
        // have none, and the property is vacuous there.
        let mut witness = None;
        for t in 0..40 {
            let r = run(&p, &g, &mut RandomAdversary::new(wb_sim::trial_seed(seed, t)));
            if is_failure(&r.outcome) {
                witness = Some(r.write_order);
                break;
            }
        }
        if let Some(witness) = witness {
            let a = wb_sim::shrink_schedule(&p, &g, &witness, &is_failure, 5_000)
                .map_err(TestCaseError::fail)?;
            let b = wb_sim::shrink_schedule(&p, &g, &witness, &is_failure, 5_000)
                .map_err(TestCaseError::fail)?;
            prop_assert_eq!(&a.schedule, &b.schedule);
            prop_assert_eq!(a.replays, b.replays);
            prop_assert!(a.schedule.len() <= witness.len());
            // The minimized schedule is a complete executed write order, so
            // the *strict* replay adversary accepts it and reproduces the
            // recorded failing outcome bit for bit.
            let replayed = run(&p, &g, &mut ScheduleAdversary::new(a.schedule.clone()));
            prop_assert!(is_failure(&replayed.outcome));
            prop_assert_eq!(format!("{:?}", replayed.outcome), a.outcome);
        }
    }

    /// Campaign aggregation is a commutative monoid: for any sharding grain
    /// the report (rendered to JSON) is byte-identical to the sequential
    /// single-batch run.
    #[test]
    fn campaign_reports_are_sharding_insensitive(n in 2usize..7, p_edge in 0.0f64..0.6, seed in any::<u64>(), batch in 1usize..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = wb_graph::generators::gnp(n, p_edge, &mut rng);
        let labels = wb_sim::CampaignLabels::default();
        let config = |b: usize| {
            wb_sim::CampaignConfig::default()
                .with_trials(600)
                .with_seed(seed)
                .with_batch(b)
        };
        let sequential =
            wb_sim::run_campaign(&MisGreedy::new(1), &g, &config(600), &labels, |_| true);
        let sharded =
            wb_sim::run_campaign(&MisGreedy::new(1), &g, &config(batch), &labels, |_| true);
        prop_assert_eq!(
            sequential.to_json().to_string(),
            sharded.to_json().to_string()
        );
    }

    /// Free-order bulk campaigns keep the determinism contract: for either
    /// free target the report (rendered to JSON) is byte-identical across
    /// sharding grains, and the parallel striped path is thread-count
    /// insensitive down to the exact board bytes.
    #[test]
    fn free_order_bulk_campaigns_are_sharding_and_thread_insensitive(
        n in 2usize..7, p_edge in 0.0f64..0.6, seed in any::<u64>(), batch in 1usize..100, threads in 1usize..9
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = wb_graph::generators::gnp(n, p_edge, &mut rng);
        let labels = wb_sim::CampaignLabels::default();
        let config = |b: usize| {
            wb_sim::CampaignConfig::default()
                .with_trials(300)
                .with_seed(seed)
                .with_batch(b)
        };
        for target in [Model::Sync, Model::Async] {
            let sequential = wb_sim::run_bulk_campaign(
                &MisGreedy::new(1), &g, &config(300), &labels, Some(target), |_| true,
            ).map_err(TestCaseError::fail)?;
            let sharded = wb_sim::run_bulk_campaign(
                &MisGreedy::new(1), &g, &config(batch), &labels, Some(target), |_| true,
            ).map_err(TestCaseError::fail)?;
            prop_assert_eq!(
                sequential.to_json().to_string(),
                sharded.to_json().to_string()
            );
        }
        // The SIMASYNC-native parallel path under free targets: any writer
        // width produces the identical board.
        let kg = wb_graph::generators::k_degenerate(n, 1, false, &mut rng);
        let schedule = shuffled_schedule(kg.n(), seed);
        for target in [Model::Sync, Model::Async] {
            let narrow = run_bulk(
                &Oblivious::new(BuildDegenerate::new(1)), &kg, &schedule, Some(target),
                &BulkConfig::default().with_threads(1),
            ).map_err(|e| TestCaseError::fail(e.to_string()))?;
            let wide = run_bulk(
                &Oblivious::new(BuildDegenerate::new(1)), &kg, &schedule, Some(target),
                &BulkConfig::default().with_threads(threads),
            ).map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(format!("{:?}", narrow.outcome), format!("{:?}", wide.outcome));
            prop_assert_eq!(narrow.write_order, wide.write_order);
            prop_assert_eq!(narrow.board.to_whiteboard(), wide.board.to_whiteboard());
        }
    }

    /// A seeded schedule replays bit-for-bit through both tiers under the
    /// free targets, with and without crash faults: same outcome rendering,
    /// same executed write order, same crashed set, same board bytes.
    #[test]
    fn free_order_schedules_replay_bit_for_bit_across_tiers(
        n in 2usize..10, p_edge in 0.0f64..0.6, seed in any::<u64>(), f in 0usize..3
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = wb_graph::generators::gnp(n, p_edge, &mut rng);
        let protocol = MisGreedy::new(1);
        let schedule = shuffled_schedule(n, seed);
        let victims: Vec<NodeId> = schedule[..f.min(n)].to_vec();
        for target in [Model::Sync, Model::Async] {
            let bulk = run_bulk_crashed(
                &protocol, &g, &schedule, Some(target), &BulkConfig::default(), &victims,
            ).map_err(|e| TestCaseError::fail(e.to_string()))?;
            let promoted = Promote::new(protocol.clone(), target);
            let mut engine = Engine::new(&promoted, &g);
            let mut adv = PriorityAdversary::new(&schedule);
            let step = loop {
                engine.activation_phase();
                let active = engine.active_set();
                if active.is_empty() {
                    break engine.finish();
                }
                let pick = adv.pick(&active, engine.board());
                if victims.contains(&pick) {
                    engine.step_crash(pick);
                } else {
                    engine.step(pick);
                }
            };
            prop_assert_eq!(
                format!("{target}:{:?}", bulk.outcome),
                format!("{target}:{:?}", step.outcome)
            );
            prop_assert_eq!(&bulk.write_order, &step.write_order);
            prop_assert_eq!(&bulk.crashed, &step.crashed);
            prop_assert_eq!(bulk.board.to_whiteboard(), step.board);
        }
    }

    /// The canonical state is write-order-oblivious exactly as specified:
    /// two different permutations of the same SIMASYNC write set land in
    /// the same canonical state, while different write sets never collide.
    #[test]
    fn canonical_state_is_permutation_invariant_for_simasync(n in 2usize..8, k in 1usize..3, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = wb_graph::generators::k_degenerate(n, k, false, &mut rng);
        let p = BuildDegenerate::new(k);
        let drive = |order: &[NodeId]| {
            let mut e = Engine::new(&p, &g);
            e.activation_phase();
            for &v in order { e.step(v); e.activation_phase(); }
            e.canonical_state()
        };
        // Forward vs reversed prefix of the same two writers.
        let forward = drive(&[1, 2]);
        let backward = drive(&[2, 1]);
        prop_assert_eq!(forward.clone(), backward);
        // A different write set must differ.
        if n >= 3 {
            let other = drive(&[1, 3]);
            prop_assert_ne!(forward, other);
        }
    }
}

/// Certify a random small instance through the registry: the protocol is
/// chosen by seed from a spread of native models, the graph from G(n, p).
fn random_certificate(n: usize, p_edge: f64, seed: u64) -> wb_bench::certify::CertifiedRun {
    let specs = ["build", "mis:1", "bfs", "eob-bfs", "async-bipartite-bfs"];
    let spec = specs[(seed % specs.len() as u64) as usize];
    let mut rng = StdRng::seed_from_u64(seed);
    let g = wb_graph::generators::gnp(n, p_edge, &mut rng);
    wb_bench::certify::certify_spec(
        spec,
        &g,
        None,
        wb_bench::certify::Provenance {
            family: Some("gnp"),
            seed: Some(seed),
        },
        &ExploreConfig::default(),
    )
    .expect("exhaustive-tier instances certify")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Serialization is a bijection on valid certificates: emitting twice is
    /// byte-identical, and `parse` (which re-serializes canonically and
    /// demands byte-equality with its input) accepts the emission — i.e.
    /// emit → parse → re-emit is the identity on bytes.
    #[test]
    fn certificate_emission_round_trips_byte_identical(
        n in 2usize..5, p_edge in 0.0f64..0.8, seed in any::<u64>()
    ) {
        let run = random_certificate(n, p_edge, seed);
        let first = run.certificate.to_json_line();
        let second = run.certificate.to_json_line();
        prop_assert_eq!(&first, &second);
        let parsed = wb_verify::parse(&first);
        prop_assert!(parsed.is_ok(), "fresh emission must parse canonically: {:?}", parsed.err());
    }

    /// Verification is a pure function of the bytes: repeated runs and
    /// concurrent runs from several threads all return the same summary.
    #[test]
    fn verification_is_deterministic(
        n in 2usize..5, p_edge in 0.0f64..0.8, seed in any::<u64>()
    ) {
        let run = random_certificate(n, p_edge, seed);
        let line = run.certificate.to_json_line();
        let reference = wb_verify::verify_line(&line);
        prop_assert!(reference.is_ok(), "{:?}", reference.err());
        let results: Vec<_> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| scope.spawn(|| wb_verify::verify_line(&line)))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("verifier thread panicked"))
                .collect()
        });
        for r in results {
            prop_assert_eq!(&r, &reference);
        }
    }

    /// No single-byte corruption of a serialized certificate verifies: any
    /// flip is caught by the JSON parser, the canonical-form gate, or the
    /// document digest.
    #[test]
    fn single_byte_corruption_never_verifies(
        n in 2usize..5, p_edge in 0.0f64..0.8, seed in any::<u64>(), poke in any::<u64>()
    ) {
        let run = random_certificate(n, p_edge, seed);
        let line = run.certificate.to_json_line();
        let mut bytes = line.clone().into_bytes();
        let idx = (poke as usize) % bytes.len();
        // Flip the low bit: always a different byte, sometimes still the
        // same character class (digit -> digit, hex -> hex) so the digest
        // gate gets exercised, not just the JSON parser.
        bytes[idx] ^= 1;
        prop_assert_ne!(&bytes[..], line.as_bytes());
        let corrupted = String::from_utf8_lossy(&bytes).into_owned();
        prop_assert!(
            wb_verify::verify_line(&corrupted).is_err(),
            "corruption at byte {} must not verify", idx
        );
    }
}
