//! End-to-end tests of the `whiteboard` CLI binary.

use std::process::Command;

fn whiteboard(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_whiteboard"))
        .args(args)
        .output()
        .expect("binary runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

/// Like [`whiteboard`], but keeping stdout separate from stderr — the
/// campaign's JSON report is deterministic on stdout while timing goes to
/// stderr, and the byte-stability assertions must not mix the two.
fn whiteboard_stdout(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_whiteboard"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn run_build_on_tree() {
    let (ok, out) = whiteboard(&[
        "run",
        "--protocol",
        "build:1",
        "--workload",
        "tree",
        "--n",
        "64",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("rebuilt exactly = true"), "{out}");
}

#[test]
fn run_rejects_cycle_under_forest_protocol() {
    let (ok, out) = whiteboard(&[
        "run",
        "--protocol",
        "build:1",
        "--workload",
        "cycle",
        "--n",
        "30",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("rejected"), "{out}");
}

#[test]
fn run_mis_reports_validity() {
    let (ok, out) = whiteboard(&[
        "run",
        "--protocol",
        "mis:3",
        "--workload",
        "gnp:4",
        "--n",
        "50",
        "--adversary",
        "max",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("valid = true"), "{out}");
}

#[test]
fn run_sweeps_multiple_sizes() {
    let (ok, out) = whiteboard(&[
        "run",
        "--protocol",
        "bfs",
        "--workload",
        "gnp:3",
        "--n",
        "20,40,80",
    ]);
    assert!(ok, "{out}");
    assert_eq!(out.matches("matches reference = true").count(), 3, "{out}");
}

#[test]
fn trace_flag_prints_rounds() {
    let (ok, out) = whiteboard(&[
        "run",
        "--protocol",
        "eob-bfs",
        "--workload",
        "eob",
        "--n",
        "21",
        "--trace",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("round  active  writer  bits"), "{out}");
}

#[test]
fn check_is_exhaustive_and_bounded() {
    let (ok, out) = whiteboard(&["check", "--protocol", "mis:2", "--n", "3"]);
    assert!(ok, "{out}");
    assert!(out.contains("exhaustive check passed"), "{out}");
    let (ok, out) = whiteboard(&["check", "--protocol", "bfs", "--n", "9"]);
    assert!(!ok);
    assert!(out.contains("--n ≤ 5"), "{out}");
}

#[test]
fn explore_prints_the_report_and_dedup_stats() {
    let (ok, out) = whiteboard(&[
        "explore",
        "--protocol",
        "mis:1",
        "--workload",
        "path",
        "--n",
        "6",
        "--compare-naive",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("distinct states"), "{out}");
    assert!(out.contains("dedup ratio"), "{out}");
    assert!(out.contains("naive (no dedup)"), "{out}");
    assert!(out.contains("verdict         : PASS"), "{out}");
}

#[test]
fn explore_json_emits_machine_readable_report() {
    let (ok, out) = whiteboard(&[
        "explore",
        "--protocol",
        "mis:1",
        "--workload",
        "path",
        "--n",
        "6",
        "--json",
        "--compare-naive",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("\"distinct_states\":100"), "{out}");
    assert!(out.contains("\"verdict\":\"PASS\""), "{out}");
    assert!(out.contains("\"schema\":\"wb-serve/explore/v1\""), "{out}");
    assert!(out.contains("\"dedup\":\"canonical\""), "{out}");
    // --compare-naive lands in the JSON too, not just the human report.
    assert!(out.contains("\"naive_states\":1957"), "{out}");
    assert!(out.contains("\"dedup_savings\":19.57"), "{out}");
    // Timing stays on stderr: the report is deterministic.
    assert!(!out.contains("states_per_sec"), "{out}");
}

#[test]
fn explore_json_is_deterministic_for_a_fixed_seed() {
    let args = [
        "explore",
        "--protocol",
        "mis:1",
        "--workload",
        "path",
        "--n",
        "6",
        "--json",
    ];
    let (ok_a, a) = whiteboard_stdout(&args);
    let (ok_b, b) = whiteboard_stdout(&args);
    assert!(ok_a && ok_b, "{a}{b}");
    assert_eq!(a, b, "explore --json must be byte-identical across runs");
}

#[test]
fn explore_dedup_modes_agree() {
    // Fingerprint (default) and exact snapshots must report identical
    // state counts; `off` walks the full tree.
    let run = |dedup: &str| {
        let (ok, out) = whiteboard(&[
            "explore",
            "--protocol",
            "build:1",
            "--workload",
            "path",
            "--n",
            "6",
            "--dedup",
            dedup,
            "--json",
        ]);
        assert!(ok, "{out}");
        out
    };
    let fp = run("canonical");
    let exact = run("exact");
    assert!(fp.contains("\"distinct_states\":64"), "{fp}");
    assert!(exact.contains("\"distinct_states\":64"), "{exact}");
    let off = run("off");
    assert!(off.contains("\"distinct_states\":1957"), "{off}");

    let (ok, out) = whiteboard(&[
        "explore",
        "--protocol",
        "mis:1",
        "--workload",
        "path",
        "--n",
        "4",
        "--dedup",
        "bogus",
    ]);
    assert!(!ok);
    assert!(out.contains("unknown dedup policy"), "{out}");
}

#[test]
fn explore_reduction_policies_match_off_and_report_stats() {
    // The reduced walks must agree with the unreduced one on every
    // observable: distinct states, terminals, verdict. Stats only appear
    // when a reduction is on, keeping the off-policy JSON byte-stable.
    let run = |reduction: &str| {
        let (ok, out) = whiteboard_stdout(&[
            "explore",
            "--protocol",
            "mis:1",
            "--workload",
            "cycle",
            "--n",
            "6",
            "--reduction",
            reduction,
            "--json",
        ]);
        assert!(ok, "{out}");
        out
    };
    let off = run("off");
    assert!(off.contains("\"distinct_states\":88"), "{off}");
    assert!(!off.contains("\"reduction\""), "{off}");
    for policy in ["dpor", "symmetry", "dpor+symmetry"] {
        let reduced = run(policy);
        assert!(reduced.contains("\"terminals\":2"), "{policy}: {reduced}");
        assert!(
            reduced.contains("\"verdict\":\"PASS\""),
            "{policy}: {reduced}"
        );
        assert!(
            reduced.contains(&format!("\"reduction\":\"{policy}\"")),
            "{policy}: {reduced}"
        );
        assert!(
            reduced.contains("\"reduction_stats\":"),
            "{policy}: {reduced}"
        );
    }
    // DPOR prunes transitions, never states: the count is preserved.
    assert!(run("dpor").contains("\"distinct_states\":88"));

    // Reductions prune relative to the deduplicated state graph, so
    // `--dedup off` is refused with the reason.
    let (ok, out) = whiteboard(&[
        "explore",
        "--protocol",
        "mis:1",
        "--workload",
        "cycle",
        "--n",
        "5",
        "--reduction",
        "dpor",
        "--dedup",
        "off",
    ]);
    assert!(!ok);
    assert!(out.contains("requires state deduplication"), "{out}");
    let (ok, out) = whiteboard(&[
        "explore",
        "--protocol",
        "mis:1",
        "--n",
        "4",
        "--reduction",
        "bogus",
    ]);
    assert!(!ok);
    assert!(out.contains("unknown reduction policy"), "{out}");
}

#[test]
fn explore_json_rate_fields_are_finite_and_sane() {
    // The dedup-ratio field goes through the zero-division guards on
    // `ExplorationReport`, and timing fields must NOT appear — the report
    // is deterministic, with wall-clock numbers on stderr only.
    let (ok, out) = whiteboard_stdout(&[
        "explore",
        "--protocol",
        "mis:1",
        "--workload",
        "path",
        "--n",
        "5",
        "--json",
    ]);
    assert!(ok, "{out}");
    let doc = wb_bench::json::Json::parse(out.trim()).expect("explore --json emits valid JSON");
    let ratio = doc
        .get("dedup_ratio")
        .and_then(wb_bench::json::Json::as_f64)
        .expect("dedup_ratio present");
    assert!(ratio.is_finite() && ratio >= 1.0, "dedup_ratio = {ratio}");
    assert!(doc.get("wall_sec").is_none(), "{out}");
    assert!(doc.get("states_per_sec").is_none(), "{out}");
}

#[test]
fn campaign_reports_pass_and_throughput() {
    let (ok, out) = whiteboard(&[
        "campaign",
        "--protocol",
        "mis:1",
        "--graph-family",
        "gnp",
        "--n",
        "40",
        "--trials",
        "2000",
        "--seed",
        "5",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("passed / failed : 2000 / 0"), "{out}");
    assert!(out.contains("verdict         : PASS"), "{out}");
    assert!(out.contains("trials/sec"), "{out}");
}

#[test]
fn campaign_json_is_deterministic_for_a_fixed_seed() {
    let args = [
        "campaign",
        "--protocol",
        "mis:1",
        "--graph-family",
        "path",
        "--n",
        "6",
        "--trials",
        "3000",
        "--seed",
        "99",
        "--model",
        "fsync",
        "--json",
    ];
    let (ok_a, a) = whiteboard_stdout(&args);
    let (ok_b, b) = whiteboard_stdout(&args);
    assert!(ok_a && ok_b, "{a}{b}");
    assert_eq!(a, b, "fixed seed must give byte-identical JSON");
    assert!(a.contains("\"schema\":\"wb-sim/campaign/v1\""), "{a}");
    assert!(
        a.contains("\"model\":\"SYNC\""),
        "fsync promotes to SYNC: {a}"
    );
    assert!(a.contains("\"verdict\":\"PASS\""), "{a}");
    wb_bench::json::Json::parse(a.trim()).expect("campaign --json emits valid JSON");
}

#[test]
fn campaign_shrinks_injected_failures_to_corpus_witnesses() {
    // The Open Problem 3 ablation graph (triangle with tail) deadlocks the
    // async bipartite BFS on every schedule: the campaign must find it,
    // shrink it, and write a corpus fixture that replays.
    let dir = std::env::temp_dir().join("wb_cli_campaign_test");
    std::fs::create_dir_all(&dir).unwrap();
    let graph_path = dir.join("ablation.txt");
    std::fs::write(&graph_path, "5\n1 2\n2 3\n1 3\n3 4\n4 5\n").unwrap();
    let fixture_path = dir.join("witness.ron");
    let family = format!("file:{}", graph_path.display());
    let (ok, out) = whiteboard(&[
        "campaign",
        "--protocol",
        "async-bipartite-bfs",
        "--graph-family",
        &family,
        "--n",
        "5",
        "--trials",
        "500",
        "--seed",
        "9",
        "--shrink",
        "--shrink-out",
        fixture_path.to_str().unwrap(),
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("verdict         : FAIL"), "{out}");
    assert!(out.contains("shrunk witness"), "{out}");
    assert!(out.contains("wrote shrunk witness fixture"), "{out}");
    let fixture = shared_whiteboard::corpus::WitnessFixture::load(&fixture_path).unwrap();
    assert_eq!(fixture.protocol, "async-bipartite-bfs");
    fixture.replay().expect("shrunk fixture replays");
    let _ = std::fs::remove_file(&fixture_path);
    let _ = std::fs::remove_file(&graph_path);
}

#[test]
fn campaign_rejects_bad_specs_cleanly() {
    let (ok, out) = whiteboard(&[
        "campaign",
        "--protocol",
        "mis:1",
        "--n",
        "5",
        "--trials",
        "10",
        "--sampler",
        "bogus",
    ]);
    assert!(!ok);
    assert!(out.contains("unknown sampler"), "{out}");
    let (ok, out) = whiteboard(&[
        "campaign",
        "--protocol",
        "mis:1",
        "--n",
        "5",
        "--trials",
        "10",
        "--model",
        "bogus",
    ]);
    assert!(!ok);
    assert!(out.contains("unknown model"), "{out}");
    // MIS is SIMSYNC-native: demotion to SIMASYNC must be refused.
    let (ok, out) = whiteboard(&[
        "campaign",
        "--protocol",
        "mis:1",
        "--n",
        "5",
        "--trials",
        "10",
        "--model",
        "simasync",
    ]);
    assert!(!ok);
    assert!(out.contains("cannot demote"), "{out}");
}

#[test]
fn explore_parallel_truncation_is_reported_not_fatal() {
    // A tight state cap: partial result, INCONCLUSIVE verdict, exit 0.
    let (ok, out) = whiteboard(&[
        "explore",
        "--protocol",
        "bfs",
        "--workload",
        "clique",
        "--n",
        "7",
        "--par",
        "--max-states",
        "5",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("truncated       : YES"), "{out}");
    assert!(out.contains("INCONCLUSIVE"), "{out}");
}

#[test]
fn bulk_runs_both_engine_paths_and_reports_throughput() {
    // SIMSYNC columnar path (MIS) on the linear-time sparse family.
    let (ok, out) = whiteboard(&[
        "bulk",
        "--protocol",
        "mis:1",
        "--graph-family",
        "gnp-lin:4",
        "--n",
        "3000",
        "--seed",
        "5",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("rounds/sec"), "{out}");
    assert!(out.contains("verdict         : PASS"), "{out}");
    // SIMASYNC parallel path (BUILD), JSON form.
    let (ok, out) = whiteboard_stdout(&[
        "bulk",
        "--protocol",
        "build:2",
        "--graph-family",
        "kdeg-lin:2",
        "--n",
        "2000",
        "--json",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("\"verdict\":\"PASS\""), "{out}");
    assert!(out.contains("\"rounds\":2000"), "{out}");
    assert!(out.contains("\"board_payload_bytes\":"), "{out}");
    assert!(out.contains("\"schema\":\"wb-serve/bulk/v1\""), "{out}");
    // Timing stays on stderr: the report is deterministic.
    assert!(!out.contains("rounds_per_sec"), "{out}");
    wb_bench::json::Json::parse(out.trim()).expect("bulk --json emits valid JSON");
}

#[test]
fn bulk_rejects_free_native_protocols_and_demotions() {
    // The rejection must name the offending protocol, its model, and the
    // supported alternatives — not just wave at "simultaneous".
    let (ok, out) = whiteboard(&["bulk", "--protocol", "bfs", "--n", "100"]);
    assert!(!ok);
    assert!(out.contains("protocol 'bfs'"), "{out}");
    assert!(out.contains("the free model SYNC"), "{out}");
    assert!(out.contains("simultaneous-native protocols only"), "{out}");
    assert!(out.contains("SIMASYNC or SIMSYNC"), "{out}");
    // An ASYNC-native protocol is named with its own model.
    let (ok, out) = whiteboard(&["bulk", "--protocol", "eob-bfs", "--n", "100"]);
    assert!(!ok);
    assert!(out.contains("protocol 'eob-bfs'"), "{out}");
    assert!(out.contains("the free model ASYNC"), "{out}");
    assert!(out.contains("SIMASYNC or SIMSYNC"), "{out}");
    // Demotion is refused with the structured runtime error naming the
    // supported set.
    let (ok, out) = whiteboard(&[
        "bulk",
        "--protocol",
        "mis:1",
        "--n",
        "100",
        "--model",
        "simasync",
    ]);
    assert!(!ok);
    assert!(out.contains("protocol 'mis:1'"), "{out}");
    assert!(
        out.contains("cannot demote SIMSYNC protocol to SIMASYNC"),
        "{out}"
    );
    assert!(
        out.contains("runs it under SIMSYNC, ASYNC or SYNC only"),
        "{out}"
    );
}

#[test]
fn bulk_accepts_free_targets_through_the_event_scheduler() {
    // SYNC target: the schedule-ordered event loop on a SIMSYNC protocol.
    let (ok, out) = whiteboard(&[
        "bulk",
        "--protocol",
        "mis:1",
        "--graph-family",
        "gnp-lin:4",
        "--n",
        "2000",
        "--model",
        "sync",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("@ SYNC"), "{out}");
    assert!(out.contains("verdict         : PASS"), "{out}");
    // ASYNC target: the Lemma 4 sequential-activation chain, JSON form.
    let (ok, out) = whiteboard_stdout(&[
        "bulk",
        "--protocol",
        "mis:1",
        "--graph-family",
        "gnp-lin:4",
        "--n",
        "2000",
        "--model",
        "async",
        "--json",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("\"model\":\"ASYNC\""), "{out}");
    assert!(out.contains("\"verdict\":\"PASS\""), "{out}");
    assert!(out.contains("\"rounds\":2000"), "{out}");
    // A SIMASYNC-native protocol rides the parallel path under any target.
    let (ok, out) = whiteboard(&[
        "bulk",
        "--protocol",
        "build:2",
        "--graph-family",
        "kdeg-lin:2",
        "--n",
        "2000",
        "--model",
        "async",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("@ ASYNC"), "{out}");
    assert!(out.contains("verdict         : PASS"), "{out}");
}

#[test]
fn fault_plans_flow_through_every_tier_and_refusals_are_structured() {
    // Faulted explore: the plan is echoed and the degraded verdict passes.
    let (ok, out) = whiteboard(&[
        "explore",
        "--protocol",
        "mis:1",
        "--workload",
        "path",
        "--n",
        "4",
        "--faults",
        "crash:1",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("faults          : crash:1"), "{out}");
    assert!(out.contains("verdict         : PASS"), "{out}");
    // Faulted campaign, JSON form: the plan rides in the report.
    let (ok, out) = whiteboard_stdout(&[
        "campaign",
        "--protocol",
        "mis:1",
        "--n",
        "12",
        "--trials",
        "20",
        "--faults",
        "crash:1",
        "--json",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("\"faults\":\"crash:1\""), "{out}");
    // Faulted bulk names its victims.
    let (ok, out) = whiteboard(&[
        "bulk",
        "--protocol",
        "mis:1",
        "--n",
        "200",
        "--faults",
        "crash:2",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("faults          : crash:2 (died"), "{out}");
    // Bulk refuses lossy plans with the reason and the escape route.
    let (ok, out) = whiteboard(&[
        "bulk",
        "--protocol",
        "mis:1",
        "--n",
        "200",
        "--faults",
        "lossy:1",
    ]);
    assert!(!ok);
    assert!(out.contains("crash-stop fault plans only"), "{out}");
    assert!(out.contains("`explore` or `campaign`"), "{out}");
    // Shrinking replays fault-free, so faulted campaigns refuse --shrink.
    let (ok, out) = whiteboard(&[
        "campaign",
        "--protocol",
        "mis:1",
        "--n",
        "12",
        "--trials",
        "20",
        "--faults",
        "crash:1",
        "--shrink",
    ]);
    assert!(!ok);
    assert!(
        out.contains("--shrink replays schedules fault-free"),
        "{out}"
    );
    // Malformed plans are named.
    let (ok, out) = whiteboard(&[
        "explore",
        "--protocol",
        "mis:1",
        "--n",
        "4",
        "--faults",
        "melt:3",
    ]);
    assert!(!ok);
    assert!(out.contains("melt"), "{out}");
}

#[test]
fn list_marks_bulk_tier_protocols() {
    let (ok, out) = whiteboard(&["list"]);
    assert!(ok);
    assert!(out.contains("[bulk]"), "{out}");
    assert!(out.contains("Thm 5"), "{out}");
    // Free-model rows carry no bulk marker.
    let bfs_line = out
        .lines()
        .find(|l| l.trim_start().starts_with("bfs"))
        .unwrap();
    assert!(!bfs_line.contains("[bulk]"), "{bfs_line}");
}

#[test]
fn capacity_table_prints_verdicts() {
    let (ok, out) = whiteboard(&["capacity", "--n", "4096"]);
    assert!(ok, "{out}");
    assert!(out.contains("IMPOSSIBLE"), "{out}");
    assert!(out.contains("labeled trees"), "{out}");
}

#[test]
fn list_shows_protocols() {
    let (ok, out) = whiteboard(&["list"]);
    assert!(ok);
    assert!(out.contains("build:K") && out.contains("eob-bfs"), "{out}");
}

#[test]
fn connectivity_and_statistics_protocols() {
    let (ok, out) = whiteboard(&[
        "run",
        "--protocol",
        "connectivity",
        "--workload",
        "two-cliques",
        "--n",
        "12",
    ]);
    assert!(ok, "{out}");
    assert!(
        out.contains("connected = false (2 components; truth: false)"),
        "{out}"
    );
    let (ok, out) = whiteboard(&[
        "run",
        "--protocol",
        "edge-count",
        "--workload",
        "clique",
        "--n",
        "10",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("m = 45 (truth: 45)"), "{out}");
    let (ok, out) = whiteboard(&[
        "run",
        "--protocol",
        "degree-stats",
        "--workload",
        "cycle",
        "--n",
        "9",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("regular Some(2)"), "{out}");
}

#[test]
fn mixed_build_handles_dense_inputs() {
    let (ok, out) = whiteboard(&[
        "run",
        "--protocol",
        "build-mixed:2",
        "--workload",
        "mixed:2",
        "--n",
        "60",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("rebuilt exactly = true"), "{out}");
}

#[test]
fn file_workload_loads_edge_lists() {
    let dir = std::env::temp_dir().join("wb_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("input.txt");
    std::fs::write(&path, "5\n1 2\n2 3\n3 4\n4 5\n").unwrap();
    let spec = format!("file:{}", path.display());
    let (ok, out) = whiteboard(&["run", "--protocol", "bfs", "--workload", &spec, "--n", "0"]);
    assert!(ok, "{out}");
    assert!(out.contains("matches reference = true"), "{out}");
    let (ok, out) = whiteboard(&[
        "run",
        "--protocol",
        "bfs",
        "--workload",
        "file:/nonexistent",
    ]);
    assert!(!ok);
    assert!(out.contains("cannot load"), "{out}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn dot_subcommand_emits_graphviz() {
    let (ok, out) = whiteboard(&["dot", "--workload", "cycle", "--n", "6"]);
    assert!(ok, "{out}");
    assert!(out.starts_with("graph whiteboard {"), "{out}");
    assert_eq!(out.matches(" -- ").count(), 6, "{out}");
    let (ok, out) = whiteboard(&["dot", "--workload", "path", "--n", "4", "--protocol", "bfs"]);
    assert!(ok, "{out}");
    assert!(out.contains("doublecircle"), "{out}");
}

#[test]
fn unknown_flags_fail_cleanly() {
    let (ok, out) = whiteboard(&["run", "--bogus"]);
    assert!(!ok);
    assert!(out.contains("unknown flag"), "{out}");
    let (ok, out) = whiteboard(&["frobnicate"]);
    assert!(!ok);
    assert!(out.contains("unknown command"), "{out}");
}

/// Every subcommand rejects unknown and duplicate flags with a usage error
/// naming the offending flag — a typo'd or repeated flag must never be
/// silently ignored.
#[test]
fn every_subcommand_rejects_unknown_and_duplicate_flags() {
    const SUBCOMMANDS: &[&str] = &[
        "run", "check", "explore", "campaign", "bulk", "capacity", "certify", "verify", "dot",
        "serve", "submit", "status", "shutdown", "list",
    ];
    for cmd in SUBCOMMANDS {
        let (ok, out) = whiteboard(&[cmd, "--frobnicate"]);
        assert!(!ok, "{cmd} accepted an unknown flag: {out}");
        assert!(
            out.contains("unknown flag '--frobnicate'"),
            "{cmd} did not name the unknown flag: {out}"
        );
        let (ok, out) = whiteboard(&[cmd, "--seed", "1", "--seed", "2"]);
        assert!(!ok, "{cmd} accepted a duplicate flag: {out}");
        assert!(
            out.contains("duplicate flag '--seed'"),
            "{cmd} did not name the duplicate flag: {out}"
        );
    }
}

#[test]
fn strict_parsing_catches_stray_and_malformed_arguments() {
    // `--workload` and `--graph-family` are one flag under two names.
    let (ok, out) = whiteboard(&[
        "campaign",
        "--workload",
        "path",
        "--graph-family",
        "gnp",
        "--n",
        "5",
        "--trials",
        "1",
    ]);
    assert!(!ok);
    assert!(out.contains("duplicate flag '--graph-family'"), "{out}");
    // A flag where a value belongs is reported, not consumed.
    let (ok, out) = whiteboard(&["explore", "--protocol", "--json"]);
    assert!(!ok);
    assert!(out.contains("--protocol expects a value"), "{out}");
    // Stray positionals are errors everywhere except `verify`.
    let (ok, out) = whiteboard(&["run", "extra-word"]);
    assert!(!ok);
    assert!(out.contains("unexpected argument 'extra-word'"), "{out}");
}

#[test]
fn certify_then_verify_round_trips() {
    let dir = std::env::temp_dir().join("wb_cli_certify_test");
    std::fs::create_dir_all(&dir).unwrap();
    let cert_path = dir.join("mis.jsonl");
    let (ok, out) = whiteboard(&[
        "certify",
        "--protocol",
        "mis:1",
        "--workload",
        "path",
        "--n",
        "3,4",
        "--model",
        "sync",
        "--out",
        cert_path.to_str().unwrap(),
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("certified mis:1"), "{out}");
    let (ok, out) = whiteboard(&["verify", cert_path.to_str().unwrap()]);
    assert!(ok, "{out}");
    assert_eq!(out.matches("PASS mis:1 SYNC").count(), 2, "{out}");
    assert!(out.contains("verified 2 certificate(s)"), "{out}");
    let _ = std::fs::remove_file(&cert_path);
}

#[test]
fn certify_without_out_writes_jsonl_to_stdout() {
    let (ok, out) = whiteboard_stdout(&[
        "certify",
        "--protocol",
        "build:1",
        "--workload",
        "tree",
        "--n",
        "3",
    ]);
    assert!(ok, "{out}");
    assert!(out.starts_with("{\"digest\":\"0x"), "{out}");
    assert_eq!(out.lines().count(), 1, "{out}");
}

#[test]
fn certify_refuses_dedup_off() {
    let (ok, out) = whiteboard(&[
        "certify",
        "--protocol",
        "mis:1",
        "--n",
        "3",
        "--dedup",
        "off",
    ]);
    assert!(!ok);
    assert!(out.contains("DedupPolicy::Off"), "{out}");
}

#[test]
fn verify_rejects_a_corrupted_certificate_file() {
    let dir = std::env::temp_dir().join("wb_cli_verify_tamper_test");
    std::fs::create_dir_all(&dir).unwrap();
    let cert_path = dir.join("cert.jsonl");
    let (ok, out) = whiteboard(&[
        "certify",
        "--protocol",
        "two-cliques",
        "--workload",
        "two-cliques",
        "--n",
        "4",
        "--out",
        cert_path.to_str().unwrap(),
    ]);
    assert!(ok, "{out}");
    let mut text = std::fs::read_to_string(&cert_path).unwrap();
    // Flip the claimed state count (keeping the digest stale).
    let pos = text.find("\"states\":").expect("states field") + "\"states\":".len();
    let digit = text.as_bytes()[pos];
    let flipped = if digit == b'9' { b'8' } else { digit + 1 };
    // SAFETY-free byte edit via String rebuild.
    text.replace_range(pos..pos + 1, std::str::from_utf8(&[flipped]).unwrap());
    std::fs::write(&cert_path, &text).unwrap();
    let (ok, out) = whiteboard(&["verify", cert_path.to_str().unwrap()]);
    assert!(!ok);
    assert!(out.contains("FAIL"), "{out}");
    assert!(out.contains("digest"), "{out}");
    let _ = std::fs::remove_file(&cert_path);
}

/// End-to-end daemon smoke through the CLI client subcommands: start
/// `whiteboard serve`, submit one job per tier, and check the returned
/// reports are byte-identical to the direct `--json` commands; then status,
/// graceful shutdown, and daemon exit.
#[test]
fn serve_submit_status_shutdown_round_trip() {
    let dir = std::env::temp_dir().join(format!("wb_cli_serve_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("wb.sock");
    let socket_str = socket.to_str().unwrap();
    let mut daemon = Command::new(env!("CARGO_BIN_EXE_whiteboard"))
        .args(["serve", "--socket", socket_str, "--workers", "2"])
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("daemon starts");
    // Wait for the socket to appear.
    for _ in 0..200 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    assert!(socket.exists(), "daemon never bound its socket");

    // One job per tier, each vs the direct CLI `--json` equivalent.
    let explore_args = [
        "--protocol",
        "mis:1",
        "--workload",
        "path",
        "--n",
        "6",
        "--json",
    ];
    let campaign_args = [
        "--protocol",
        "mis:1",
        "--graph-family",
        "gnp",
        "--n",
        "30",
        "--trials",
        "500",
        "--seed",
        "5",
        "--json",
    ];
    let bulk_args = [
        "--protocol",
        "build:2",
        "--graph-family",
        "kdeg-lin:2",
        "--n",
        "1000",
        "--seed",
        "3",
        "--json",
    ];
    for (kind, args) in [
        ("explore", &explore_args[..]),
        ("campaign", &campaign_args[..]),
        ("bulk", &bulk_args[..]),
    ] {
        let mut cli: Vec<&str> = vec![kind];
        cli.extend(args.iter().filter(|a| **a != "--json"));
        let mut submit: Vec<&str> = vec!["submit", "--socket", socket_str, "--kind", kind];
        submit.extend(cli[1..].iter());
        let mut direct: Vec<&str> = vec![kind];
        direct.extend(args.iter());
        let (ok_d, via_daemon) = whiteboard_stdout(&submit);
        let (ok_c, via_cli) = whiteboard_stdout(&direct);
        assert!(ok_d && ok_c, "{kind}: {via_daemon}{via_cli}");
        assert_eq!(
            via_daemon, via_cli,
            "{kind}: daemon report must be byte-identical to the CLI report"
        );
    }

    // Roster shows three completed jobs.
    let (ok, out) = whiteboard_stdout(&["status", "--socket", socket_str]);
    assert!(ok, "{out}");
    let doc = wb_bench::json::Json::parse(out.trim()).expect("status emits valid JSON");
    let jobs = doc
        .get("jobs")
        .and_then(wb_bench::json::Json::as_arr)
        .expect("jobs array");
    assert_eq!(jobs.len(), 3, "{out}");
    assert!(out.matches("\"state\":\"done\"").count() == 3, "{out}");

    // Single-job status carries the full report.
    let (ok, out) = whiteboard_stdout(&["status", "--socket", socket_str, "--job", "1"]);
    assert!(ok, "{out}");
    assert!(out.contains("\"report\":"), "{out}");

    let (ok, _) = whiteboard(&["shutdown", "--socket", socket_str]);
    assert!(ok);
    let status = daemon.wait().expect("daemon exits after shutdown");
    assert!(status.success(), "daemon exited nonzero: {status:?}");
    assert!(!socket.exists(), "socket file removed on exit");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn explore_certify_flag_emits_a_verifiable_certificate() {
    // The ablation graph deadlocks async-bipartite-bfs: explore exits
    // nonzero (failing terminals) but must still write the certificate,
    // which carries the witnesses and verifies independently.
    let dir = std::env::temp_dir().join("wb_cli_explore_certify_test");
    std::fs::create_dir_all(&dir).unwrap();
    let graph_path = dir.join("ablation.txt");
    std::fs::write(&graph_path, "5\n1 2\n2 3\n1 3\n3 4\n4 5\n").unwrap();
    let cert_path = dir.join("explore.jsonl");
    let family = format!("file:{}", graph_path.display());
    let (ok, out) = whiteboard(&[
        "explore",
        "--protocol",
        "async-bipartite-bfs",
        "--workload",
        &family,
        "--n",
        "5",
        "--certify",
        cert_path.to_str().unwrap(),
    ]);
    assert!(!ok, "deadlocks must fail the explore verdict: {out}");
    assert!(out.contains("certificate:"), "{out}");
    let (ok, out) = whiteboard(&["verify", cert_path.to_str().unwrap()]);
    assert!(ok, "{out}");
    assert!(out.contains("PASS async-bipartite-bfs"), "{out}");
    assert!(!out.contains("failures=0"), "{out}");
    let _ = std::fs::remove_file(&cert_path);
    let _ = std::fs::remove_file(&graph_path);
}
