//! Differential suite for the sound state-space reductions of the exhaustive
//! tier: `dpor`, `symmetry`, and `dpor+symmetry` must be *observationally
//! invisible* — identical terminal counts, identical outcome multisets, and
//! an identical multiset of failure outcomes (with every fault-free witness
//! schedule replaying to its claimed outcome) — against `off` on every
//! labeled graph up to `n = 5`, for protocols native to each of the four
//! models, with and without a `crash:1` fault budget. The only thing a
//! reduction is allowed to change is how much work it took to get there
//! (`generated()`, `merged`, and the `reduction_stats` counters).

use shared_whiteboard::par::{par_drain, WorkQueue};
use shared_whiteboard::prelude::*;
use shared_whiteboard::runtime::{Commutativity, FaultPlan};
use std::collections::BTreeMap;
use std::fmt::Debug;

/// All graphs on `1..=n` nodes.
fn graphs_up_to(n: usize) -> impl Iterator<Item = Graph> {
    (1..=n).flat_map(enumerate::all_graphs)
}

/// Run `check` on every graph up to `n` nodes across the thread pool.
fn for_all_graphs_parallel(n: usize, check: impl Fn(&Graph) + Sync) {
    let count = (1..=n).map(enumerate::count_all).sum::<u64>() as usize;
    let queue = WorkQueue::bounded(count);
    for g in graphs_up_to(n) {
        queue.push(g).expect("queue sized to hold every graph");
    }
    par_drain(&queue, |g, _| check(&g));
}

// ---------------------------------------------------------------------------
// One small equivariant protocol per model. Messages carry no node IDs, so
// the default identity `relabel_message` is already correct; node behavior
// depends only on neighborhood structure, never on ID order.
// ---------------------------------------------------------------------------

/// SIMASYNC: everyone freezes at the simultaneous activation (empty board)
/// and announces its degree parity. The written bits are schedule-invariant;
/// crashes still vary which writers appear.
#[derive(Clone, Debug)]
struct DegreeParity;

#[derive(Clone)]
struct DegreeParityNode {
    odd_degree: bool,
}

impl Node for DegreeParityNode {
    fn observe(&mut self, _view: &LocalView, _seq: usize, _writer: NodeId, _msg: &BitVec) {}

    fn compose(&mut self, _view: &LocalView) -> BitVec {
        let mut w = BitWriter::new();
        w.write_bool(self.odd_degree);
        w.finish()
    }
}

impl Protocol for DegreeParity {
    type Node = DegreeParityNode;
    type Output = Vec<NodeId>;

    fn model(&self) -> Model {
        Model::SimAsync
    }

    fn budget_bits(&self, _n: usize) -> u32 {
        1
    }

    fn spawn(&self, view: &LocalView) -> DegreeParityNode {
        let degree = (1..=view.n as NodeId)
            .filter(|&v| view.is_neighbor(v))
            .count();
        DegreeParityNode {
            odd_degree: degree % 2 == 1,
        }
    }

    /// Writers that announced an odd degree, ascending.
    fn output(&self, _n: usize, board: &Whiteboard) -> Vec<NodeId> {
        let mut set: Vec<NodeId> = board
            .entries()
            .iter()
            .filter(|e| BitReader::new(&e.msg).read_bool())
            .map(|e| e.writer)
            .collect();
        set.sort_unstable();
        set
    }

    fn commutes(&self) -> Commutativity {
        Commutativity::NonAdjacent
    }

    fn equivariant(&self) -> bool {
        true
    }
}

/// ASYNC: a node freezes at activation and announces whether any *neighbor*
/// had written before that moment — the textbook frozen-view protocol, so
/// write/write dependence genuinely extends to distance two (a common
/// neighbor's frozen bit depends on which endpoint wrote first).
#[derive(Clone, Debug)]
struct HeardNeighbor;

#[derive(Clone)]
struct HeardNeighborNode {
    heard: bool,
}

impl Node for HeardNeighborNode {
    fn observe(&mut self, view: &LocalView, _seq: usize, writer: NodeId, _msg: &BitVec) {
        if view.is_neighbor(writer) {
            self.heard = true;
        }
    }

    fn compose(&mut self, _view: &LocalView) -> BitVec {
        let mut w = BitWriter::new();
        w.write_bool(self.heard);
        w.finish()
    }
}

impl Protocol for HeardNeighbor {
    type Node = HeardNeighborNode;
    type Output = Vec<NodeId>;

    fn model(&self) -> Model {
        Model::Async
    }

    fn budget_bits(&self, _n: usize) -> u32 {
        1
    }

    fn spawn(&self, _view: &LocalView) -> HeardNeighborNode {
        HeardNeighborNode { heard: false }
    }

    /// Writers that had heard a neighbor by their activation, ascending.
    fn output(&self, _n: usize, board: &Whiteboard) -> Vec<NodeId> {
        let mut set: Vec<NodeId> = board
            .entries()
            .iter()
            .filter(|e| BitReader::new(&e.msg).read_bool())
            .map(|e| e.writer)
            .collect();
        set.sort_unstable();
        set
    }

    fn commutes(&self) -> Commutativity {
        Commutativity::NonAdjacent
    }

    fn equivariant(&self) -> bool {
        true
    }
}

/// SYNC: compose reads the live board — a node joins iff no neighbor joined
/// before it wrote (unrooted greedy MIS, fully ID-free).
#[derive(Clone, Debug)]
struct FirstInNeighborhood;

#[derive(Clone)]
struct FirstNode {
    blocked: bool,
}

impl Node for FirstNode {
    fn observe(&mut self, view: &LocalView, _seq: usize, writer: NodeId, msg: &BitVec) {
        if view.is_neighbor(writer) && BitReader::new(msg).read_bool() {
            self.blocked = true;
        }
    }

    fn compose(&mut self, _view: &LocalView) -> BitVec {
        let mut w = BitWriter::new();
        w.write_bool(!self.blocked);
        w.finish()
    }
}

impl Protocol for FirstInNeighborhood {
    type Node = FirstNode;
    type Output = Vec<NodeId>;

    fn model(&self) -> Model {
        Model::Sync
    }

    fn budget_bits(&self, _n: usize) -> u32 {
        1
    }

    fn spawn(&self, _view: &LocalView) -> FirstNode {
        FirstNode { blocked: false }
    }

    /// The independent set that formed, ascending.
    fn output(&self, _n: usize, board: &Whiteboard) -> Vec<NodeId> {
        let mut set: Vec<NodeId> = board
            .entries()
            .iter()
            .filter(|e| BitReader::new(&e.msg).read_bool())
            .map(|e| e.writer)
            .collect();
        set.sort_unstable();
        set
    }

    fn commutes(&self) -> Commutativity {
        Commutativity::NonAdjacent
    }

    fn equivariant(&self) -> bool {
        true
    }
}

// ---------------------------------------------------------------------------
// The differential harness.
// ---------------------------------------------------------------------------

/// Multiset of debug-rendered values (outcomes, failure outcomes).
fn multiset<T: Debug>(items: impl IntoIterator<Item = T>) -> BTreeMap<String, usize> {
    let mut m = BTreeMap::new();
    for item in items {
        *m.entry(format!("{item:?}")).or_insert(0) += 1;
    }
    m
}

const REDUCED: [ReductionPolicy; 3] = [
    ReductionPolicy::Dpor,
    ReductionPolicy::Symmetry,
    ReductionPolicy::DporSymmetry,
];

/// Explore `p` on `g` under `off` and under every reduction policy, with the
/// given fault plan, and assert the reductions are observationally invisible.
fn assert_reductions_invisible<P>(
    p: &P,
    g: &Graph,
    label: &str,
    faults: Option<FaultPlan>,
    check: impl Fn(&Outcome<P::Output>) -> bool + Copy,
) where
    P: Protocol,
    P::Output: Clone + Debug + PartialEq,
{
    let base = ExploreConfig::default().with_faults(faults.clone());
    let off = explore(
        p,
        g,
        &base.clone().with_reduction(ReductionPolicy::Off),
        check,
    );
    assert!(
        !off.truncated,
        "{label}: unreduced exploration truncated on {g:?}"
    );

    for policy in REDUCED {
        let red = explore(p, g, &base.clone().with_reduction(policy), check);
        let ctx = format!("{label} / {policy} on {g:?}");
        assert!(!red.truncated, "{ctx}: truncated");
        assert_eq!(red.terminals, off.terminals, "{ctx}: terminal count");
        assert_eq!(
            multiset(red.outcomes.iter()),
            multiset(off.outcomes.iter()),
            "{ctx}: outcome multiset"
        );
        assert_eq!(
            multiset(red.failures.iter().map(|f| &f.outcome)),
            multiset(off.failures.iter().map(|f| &f.outcome)),
            "{ctx}: failure outcome multiset"
        );
        // DPOR alone prunes only would-be-merged transitions, so even the
        // distinct-state count is preserved; symmetry genuinely collapses
        // orbits, so there it may only shrink.
        if policy == ReductionPolicy::Dpor {
            assert_eq!(red.distinct_states, off.distinct_states, "{ctx}: distinct");
        } else {
            assert!(
                red.distinct_states <= off.distinct_states,
                "{ctx}: distinct grew"
            );
        }
        assert!(red.generated() <= off.generated(), "{ctx}: generated grew");
        let stats = red.reduction.expect("reduced exploration reports stats");
        assert_eq!(stats.policy, policy, "{ctx}: stats policy");

        // Every fault-free witness must replay, through the strict schedule
        // adversary, to exactly the outcome the explorer claimed — including
        // the relabeled witnesses synthesized by the symmetry quotient.
        for failure in &red.failures {
            if !failure.died.is_empty() {
                continue;
            }
            let replay = run(p, g, &mut ScheduleAdversary::new(failure.schedule.clone()));
            assert_eq!(
                replay.outcome, failure.outcome,
                "{ctx}: witness {:?} replayed to a different outcome",
                failure.schedule
            );
        }
    }
    assert!(
        off.reduction.is_none(),
        "{label}: off must not report stats"
    );
}

/// One full sweep: all four models on `g`, with `faults`. The predicates are
/// deliberately falsifiable on some schedules so the failure-witness paths
/// (including orbit-relabeled witnesses) are exercised, not just the happy
/// path.
fn sweep(g: &Graph, faults: Option<FaultPlan>) {
    assert_reductions_invisible(
        &DegreeParity,
        g,
        "simasync/degree-parity",
        faults.clone(),
        |o| match o {
            Outcome::Success(set) => set.len() % 2 == 0,
            Outcome::Deadlock { .. } => false,
        },
    );
    assert_reductions_invisible(
        &MisGreedy::new(1),
        g,
        "simsync/mis",
        faults.clone(),
        |o| match o {
            Outcome::Success(set) => set.contains(&2) || g.n() < 2,
            Outcome::Deadlock { .. } => false,
        },
    );
    assert_reductions_invisible(
        &HeardNeighbor,
        g,
        "async/heard-neighbor",
        faults.clone(),
        |o| match o {
            Outcome::Success(set) => set.is_empty(),
            Outcome::Deadlock { .. } => false,
        },
    );
    assert_reductions_invisible(&FirstInNeighborhood, g, "sync/first", faults, |o| match o {
        Outcome::Success(set) => !set.is_empty(),
        Outcome::Deadlock { .. } => false,
    });
}

#[test]
fn reductions_are_invisible_on_all_graphs_up_to_n5() {
    for_all_graphs_parallel(5, |g| sweep(g, None));
}

#[test]
fn reductions_are_invisible_under_crash_faults_up_to_n5() {
    for_all_graphs_parallel(5, |g| sweep(g, Some(FaultPlan::crash_stop(1))));
}

#[test]
fn symmetry_collapses_vertex_transitive_families() {
    // On a clique the stabilizer of the pinned root is S_{n-1}; the quotient
    // must slash the number of generated configurations by at least the 10x
    // the CI bench gate demands at n = 8 (the factor keeps growing with n:
    // ~5x at K6, ~9x at K7).
    let g = generators::clique(8);
    let p = MisGreedy::new(1);
    let ok = |o: &Outcome<Vec<NodeId>>| match o {
        Outcome::Success(set) => checks::is_rooted_mis(&g, set, 1),
        Outcome::Deadlock { .. } => false,
    };
    let off = explore(&p, &g, &ExploreConfig::default(), ok);
    let both = explore(
        &p,
        &g,
        &ExploreConfig::default().with_reduction(ReductionPolicy::DporSymmetry),
        ok,
    );
    assert!(off.passed() && both.passed());
    assert_eq!(both.terminals, off.terminals);
    let stats = both.reduction.unwrap();
    assert!(stats.symmetry_active && stats.dpor_active);
    assert_eq!(
        stats.group_order, 5040,
        "stabilizer of the root in K8 is S7"
    );
    assert!(
        both.generated() * 10 <= off.generated(),
        "expected a >=10x cut on K8: reduced {} vs unreduced {}",
        both.generated(),
        off.generated()
    );
}
