//! Differential test harness: the schedule-space explorer against the
//! `wb-graph` reference oracles and against the naive factorial DFS.
//!
//! Two quantifiers are discharged here, both finite:
//!
//! 1. **Protocol vs oracle** — for every labeled graph up to `n = 5`, run
//!    BUILD / MIS / BFS under all four models (via the Lemma 4 [`Promote`]
//!    adapters where the native model is weaker) through the explorer, and
//!    assert every reachable terminal output matches the reference oracle.
//! 2. **Explorer vs naive DFS** — for every labeled graph up to `n = 4`,
//!    the deduplicating explorer and the naive clone-per-branch DFS must
//!    reach exactly the same *set* of terminal outcomes (which implies the
//!    same pass/fail verdict for any predicate). This is the correctness
//!    anchor for canonical-state deduplication, run for BUILD and MIS under
//!    every model of the lattice plus the native protocols of each problem
//!    family shipped in `wb-core`.

use shared_whiteboard::par::{par_drain, WorkQueue};
use shared_whiteboard::prelude::*;
use std::collections::BTreeSet;
use std::fmt::Debug;
use wb_core::registry::{self, BoundOracle, ProtocolVisitor};
use wb_core::BuildError;

/// All graphs on `1..=n` nodes.
fn graphs_up_to(n: usize) -> impl Iterator<Item = Graph> {
    (1..=n).flat_map(enumerate::all_graphs)
}

/// Run `check` on every graph up to `n` nodes, spread across the thread
/// pool via `wb_par::par_drain` (panics inside workers propagate through
/// the scope join, so assertion failures still fail the test).
fn for_all_graphs_parallel(n: usize, check: impl Fn(&Graph) + Sync) {
    let count = (1..=n).map(enumerate::count_all).sum::<u64>() as usize;
    let queue = WorkQueue::bounded(count);
    for g in graphs_up_to(n) {
        queue.push(g).expect("queue sized to hold every graph");
    }
    par_drain(&queue, |g, _| check(&g));
}

/// Models a protocol of `native` model can be promoted to (itself included).
fn targets(native: Model) -> impl Iterator<Item = Model> {
    Model::ALL.into_iter().filter(move |t| t.includes(native))
}

/// Explore exhaustively (canonical dedup) and assert every terminal outcome
/// satisfies `oracle`; panics with the witness schedule otherwise.
fn check_against_oracle<P>(p: &P, g: &Graph, label: &str, oracle: impl Fn(&P::Output) -> bool)
where
    P: Protocol,
    P::Output: Clone + Debug,
{
    let report = explore(p, g, &ExploreConfig::default(), |outcome| match outcome {
        Outcome::Success(out) => oracle(out),
        Outcome::Deadlock { .. } => false,
    });
    assert!(!report.truncated, "{label}: truncated on {g:?}");
    if let Some(f) = report.failures.first() {
        panic!(
            "{label}: oracle violated on {g:?} under write order {:?}: {:?}",
            f.schedule, f.outcome
        );
    }
}

/// Debug-rendered set of terminal outcomes from the naive DFS.
fn naive_outcomes<P>(p: &P, g: &Graph) -> BTreeSet<String>
where
    P: Protocol,
    P::Output: Debug,
{
    let mut set = BTreeSet::new();
    let report = for_each_schedule(p, g, 500_000, |r| {
        set.insert(format!("{:?}", r.outcome));
    });
    assert!(!report.truncated, "naive DFS truncated on {g:?}");
    set
}

/// The explorer (canonical dedup) must reach exactly the naive DFS's set of
/// terminal outcomes — hence the same verdict for any outcome predicate.
fn assert_explorer_matches_naive<P>(p: &P, g: &Graph, label: &str)
where
    P: Protocol,
    P::Output: Clone + Debug,
{
    let naive = naive_outcomes(p, g);
    let report = explore(p, g, &ExploreConfig::default(), |_| true);
    assert!(!report.truncated, "{label}: explorer truncated on {g:?}");
    let explored: BTreeSet<String> = report.outcomes.iter().map(|o| format!("{o:?}")).collect();
    assert_eq!(
        explored, naive,
        "{label}: explorer and naive DFS disagree on {g:?}"
    );
    // Dedup may only shrink work, never add terminals beyond the naive set.
    assert!(report.terminals as usize >= explored.len());
}

#[test]
fn build_matches_oracle_under_all_four_models_up_to_n5() {
    // BUILD for degeneracy ≤ 2 is SIMASYNC-native, hence runs in every
    // model. Oracle: exact reconstruction on 2-degenerate inputs, a
    // degeneracy complaint otherwise. The heaviest sweep of the suite
    // (1,100 graphs × 4 models), so the graphs drain across the pool.
    for_all_graphs_parallel(5, |g| {
        let degenerate_enough = checks::degeneracy(g).0 <= 2;
        for target in targets(Model::SimAsync) {
            let p = Promote::new(BuildDegenerate::new(2), target);
            check_against_oracle(
                &p,
                g,
                &format!("BUILD@{target}"),
                |out: &Result<Graph, BuildError>| match out {
                    Ok(h) => degenerate_enough && *h == *g,
                    Err(_) => !degenerate_enough,
                },
            );
        }
    });
}

#[test]
fn mis_matches_oracle_under_its_models_up_to_n5() {
    // Rooted MIS is SIMSYNC-native: SIMSYNC, ASYNC and SYNC apply.
    for_all_graphs_parallel(5, |g| {
        for target in targets(Model::SimSync) {
            let p = Promote::new(MisGreedy::new(1), target);
            check_against_oracle(&p, g, &format!("MIS@{target}"), |set| {
                checks::is_rooted_mis(g, set, 1)
            });
        }
    });
}

#[test]
fn bfs_matches_oracle_up_to_n5() {
    // General BFS is SYNC-native (Theorem 10) — nothing to promote to, but
    // the adversary quantifier is the interesting one here anyway.
    for g in graphs_up_to(5) {
        check_against_oracle(&SyncBfs, &g, "BFS@SYNC", |f| *f == checks::bfs_forest(&g));
    }
}

#[test]
fn eob_bfs_matches_oracle_up_to_n5() {
    // EOB-BFS (ASYNC) must be total: the forest on even-odd-bipartite
    // inputs, the verdict otherwise, and never a deadlock.
    for g in graphs_up_to(5) {
        let valid = checks::is_even_odd_bipartite(&g);
        check_against_oracle(&EobBfs, &g, "EOB-BFS@ASYNC", |out| match out {
            BfsOutput::Forest(f) => valid && *f == checks::bfs_forest(&g),
            BfsOutput::NotEvenOddBipartite => !valid,
        });
    }
}

#[test]
fn explorer_matches_naive_for_build_and_mis_all_models_n4() {
    // The acceptance anchor: same outcome set, hence same verdict, on every
    // labeled graph up to n = 4, for BUILD and MIS under every model each
    // can run in.
    for g in graphs_up_to(4) {
        for target in targets(Model::SimAsync) {
            let p = Promote::new(BuildDegenerate::new(2), target);
            assert_explorer_matches_naive(&p, &g, &format!("BUILD@{target}"));
        }
        for target in targets(Model::SimSync) {
            for root in 1..=g.n() as NodeId {
                let p = Promote::new(MisGreedy::new(root), target);
                assert_explorer_matches_naive(&p, &g, &format!("MIS(root {root})@{target}"));
            }
        }
    }
}

/// Registry visitor running the full per-protocol differential battery on
/// one graph: explorer vs naive DFS outcome sets, fingerprint vs exact
/// dedup, and every reachable terminal against the registry oracle. One
/// visitor, seventeen protocols — the per-call-site protocol lists this
/// file used to carry are gone.
struct FullBattery<'a> {
    g: &'a Graph,
    info: &'static registry::ProtocolInfo,
}

impl ProtocolVisitor for FullBattery<'_> {
    type Result = ();
    fn visit<P, B>(self, protocol: P, bind: B)
    where
        P: Protocol + Clone + Send + Sync,
        P::Node: Send + Sync,
        P::Output: Clone + PartialEq + Debug + Send + Sync,
        B: for<'g> Fn(&'g Graph) -> BoundOracle<'g, P::Output> + Send + Sync,
    {
        let label = self.info.name;
        assert_explorer_matches_naive(&protocol, self.g, label);
        assert_fingerprint_matches_exact(&protocol, self.g, label);
        let oracle = bind(self.g);
        let report = explore(&protocol, self.g, &ExploreConfig::default(), |out| {
            oracle(out, &[])
        });
        assert!(!report.truncated, "{label}: truncated on {:?}", self.g);
        if self.info.total {
            if let Some(f) = report.failures.first() {
                panic!(
                    "{label}: registry oracle violated on {:?} under write order {:?}: {:?}",
                    self.g, f.schedule, f.outcome
                );
            }
        } else {
            // The Open Problem 3 ablation: failures are *expected* exactly
            // where the promise is broken, and they must all be deadlocks.
            let promise_holds = checks::is_bipartite(self.g);
            if promise_holds {
                assert!(
                    report.failures.is_empty(),
                    "{label}: failed on a promise-class instance {:?}",
                    self.g
                );
            } else {
                assert!(
                    report
                        .failures
                        .iter()
                        .all(|f| matches!(f.outcome, Outcome::Deadlock { .. })),
                    "{label}: a non-deadlock oracle failure on {:?}",
                    self.g
                );
            }
        }
    }
}

#[test]
fn every_registry_protocol_passes_the_differential_battery_n4() {
    // All seventeen registered protocols, resolved through the registry, on
    // every labeled graph up to n = 4: explorer vs naive DFS, fingerprint
    // vs exact dedup, and the shared oracle — in one sweep.
    for_all_graphs_parallel(4, |g| {
        for info in registry::PROTOCOLS {
            registry::dispatch(info.name, g.n(), FullBattery { g, info })
                .unwrap_or_else(|e| panic!("{}: {e}", info.name));
        }
    });
}

#[test]
fn parallel_explorer_agrees_with_sequential_on_oracle_checks() {
    // The par_map fan-out and sharded dedup must not change results:
    // identical counts and outcome multisets on a nontrivial instance mix
    // (discovery *order* is not promised by the parallel walk).
    for g in [
        generators::path(6),
        generators::clique(5),
        generators::star(6),
        generators::two_cliques(3),
    ] {
        let cfg = ExploreConfig::default();
        let seq = explore(&SyncBfs, &g, &cfg, |_| true);
        let par = explore_parallel(&SyncBfs, &g, &cfg, |_| true);
        assert_eq!(seq.distinct_states, par.distinct_states);
        assert_eq!(seq.terminals, par.terminals);
        assert_eq!(seq.merged, par.merged);
        let mut a: Vec<String> = seq.outcomes.iter().map(|o| format!("{o:?}")).collect();
        let mut b: Vec<String> = par.outcomes.iter().map(|o| format!("{o:?}")).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }
}

/// Fingerprint dedup must be indistinguishable from exact-snapshot dedup:
/// same reachable-state count, same merge count, same terminals, and the
/// same outcome multiset — which together pin that no fingerprint collision
/// merged two genuinely distinct configurations anywhere in the walk.
fn assert_fingerprint_matches_exact<P>(p: &P, g: &Graph, label: &str)
where
    P: Protocol,
    P::Output: Clone + Debug,
{
    let fp = explore(p, g, &ExploreConfig::default(), |_| true);
    let exact = explore(
        p,
        g,
        &ExploreConfig::default().with_dedup(DedupPolicy::Exact),
        |_| true,
    );
    assert!(
        !fp.truncated && !exact.truncated,
        "{label}: truncated {g:?}"
    );
    assert_eq!(
        fp.distinct_states, exact.distinct_states,
        "{label}: reachable-state sets differ on {g:?}"
    );
    assert_eq!(fp.merged, exact.merged, "{label}: merge counts on {g:?}");
    assert_eq!(fp.terminals, exact.terminals, "{label}: terminals on {g:?}");
    assert_eq!(fp.peak_frontier, exact.peak_frontier, "{label}: {g:?}");
    let a: BTreeSet<String> = fp.outcomes.iter().map(|o| format!("{o:?}")).collect();
    let b: BTreeSet<String> = exact.outcomes.iter().map(|o| format!("{o:?}")).collect();
    assert_eq!(a, b, "{label}: outcome sets differ on {g:?}");
}

#[test]
fn fingerprint_dedup_matches_exact_under_all_four_models_up_to_n5() {
    // The acceptance differential for streaming fingerprint dedup: on every
    // labeled graph up to n = 5, under every model of the lattice (via
    // promotion), the fingerprint-mode exploration reaches exactly the
    // exact-mode reachable-state sets. BUILD is SIMASYNC-native (promotes
    // everywhere); MIS covers the SIMSYNC branch.
    for_all_graphs_parallel(5, |g| {
        for target in targets(Model::SimAsync) {
            let p = Promote::new(BuildDegenerate::new(2), target);
            assert_fingerprint_matches_exact(&p, g, &format!("BUILD@{target}"));
        }
        for target in targets(Model::SimSync) {
            let p = Promote::new(MisGreedy::new(1), target);
            assert_fingerprint_matches_exact(&p, g, &format!("MIS@{target}"));
        }
    });
}

// ---------------------------------------------------------------------------
// Certificates inherit the explorer's soundness boundary.
// ---------------------------------------------------------------------------

/// Registry visitor pinning that a certificate's terminal outcome set is
/// exactly what the Exact-dedup explorer and the naive factorial DFS reach:
/// the certifying walk (canonical-fingerprint dedup) loses nothing and
/// invents nothing, on every model the protocol can run in.
struct CertificateBattery<'a> {
    g: &'a Graph,
    info: &'static registry::ProtocolInfo,
}

impl CertificateBattery<'_> {
    fn check_one<P>(&self, p: &P, target: Model)
    where
        P: Protocol,
        P::Output: Clone + Debug,
    {
        let label = format!("{}@{target}", self.info.name);
        let run = wb_bench::certify::certify_spec(
            self.info.name,
            self.g,
            Some(target),
            wb_bench::certify::Provenance::default(),
            &ExploreConfig::default(),
        )
        .unwrap_or_else(|e| panic!("{label}: certification failed on {:?}: {e}", self.g));
        let certified: BTreeSet<String> = run
            .certificate
            .terminals
            .iter()
            .map(|t| t.outcome.clone())
            .collect();
        let naive = naive_outcomes(p, self.g);
        assert_eq!(
            certified, naive,
            "{label}: certificate and naive DFS outcome sets differ on {:?}",
            self.g
        );
        let exact = explore(
            p,
            self.g,
            &ExploreConfig::default().with_dedup(DedupPolicy::Exact),
            |_| true,
        );
        assert!(!exact.truncated);
        let exact_set: BTreeSet<String> = exact.outcomes.iter().map(|o| format!("{o:?}")).collect();
        assert_eq!(
            certified, exact_set,
            "{label}: certificate and Exact-dedup outcome sets differ on {:?}",
            self.g
        );
        assert_eq!(
            run.distinct_states, exact.distinct_states,
            "{label}: certified state count differs from Exact dedup on {:?}",
            self.g
        );
    }
}

impl ProtocolVisitor for CertificateBattery<'_> {
    type Result = ();
    fn visit<P, B>(self, protocol: P, _bind: B)
    where
        P: Protocol + Clone + Send + Sync,
        P::Node: Send + Sync,
        P::Output: Clone + PartialEq + Debug + Send + Sync,
        B: for<'g> Fn(&'g Graph) -> BoundOracle<'g, P::Output> + Send + Sync,
    {
        let native = protocol.model();
        for target in targets(native) {
            if target == native {
                self.check_one(&protocol, target);
            } else {
                self.check_one(&Promote::new(protocol.clone(), target), target);
            }
        }
    }
}

#[test]
fn certificates_match_exact_dedup_and_naive_dfs_n4() {
    // Every registered protocol, every model it can run in (via Lemma 4
    // promotion), every labeled graph up to n = 4: the certificate's
    // terminal outcome set equals both independent references.
    for_all_graphs_parallel(4, |g| {
        for info in registry::PROTOCOLS {
            registry::dispatch(info.name, g.n(), CertificateBattery { g, info })
                .unwrap_or_else(|e| panic!("{}: {e}", info.name));
        }
    });
}

// ---------------------------------------------------------------------------
// Fault plans: the inert plan is byte-identical to no plan at all.
// ---------------------------------------------------------------------------

#[test]
fn inert_fault_plans_leave_job_reports_byte_identical_across_the_registry() {
    // The fault-free differential gate: for every registered protocol, on
    // every execution tier it supports, a budget-0 fault plan (`crash:0` and
    // `lossy:0`) must produce the *byte-identical* report — same JSON, same
    // verdict — as no plan at all. This pins that wiring `FaultPlan` through
    // the engines changed nothing about historical behavior.
    use wb_serve::jobs::{run_job, JobKind, JobSpec};
    let render = |spec: &JobSpec| run_job(spec).map(|r| (r.line(), r.verdict));
    for info in registry::PROTOCOLS {
        for kind in [JobKind::Explore, JobKind::Campaign, JobKind::Bulk] {
            if kind == JobKind::Bulk && !info.bulk {
                continue;
            }
            let mut base = JobSpec::new(kind);
            base.protocol = info.spec.to_string();
            match kind {
                JobKind::Explore => base.n = 4,
                JobKind::Campaign => {
                    base.n = 12;
                    base.trials = 40;
                }
                JobKind::Bulk => base.n = 60,
            }
            let baseline = render(&base);
            for plan in ["crash:0", "lossy:0"] {
                let mut faulted = base.clone();
                faulted.faults = Some(plan.into());
                assert_eq!(
                    render(&faulted),
                    baseline,
                    "{} {:?} with {plan} diverged from the fault-free report",
                    info.spec,
                    kind
                );
            }
        }
    }
}

#[test]
fn certification_refuses_the_unsound_dedup_escape_hatch() {
    // `DedupPolicy::Off` exists for transcript-valued protocols, whose
    // outcome sets canonical dedup legitimately collapses — exactly the
    // runs a certificate's distinct-configuration DAG cannot represent.
    // Certification must therefore refuse the escape hatch outright.
    let g = generators::path(3);
    let err = wb_bench::certify::certify_spec(
        "mis:1",
        &g,
        None,
        wb_bench::certify::Provenance::default(),
        &ExploreConfig::default().without_dedup(),
    )
    .err()
    .expect("certification with dedup off must be refused");
    assert!(err.contains("DedupPolicy::Off"), "{err}");
}
