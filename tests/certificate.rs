//! Certificate tamper battery: every registry protocol certifies and
//! independently verifies on small graphs, and every mutation class a
//! certificate can suffer is rejected with a structured error naming the
//! offending edge, terminal, or witness.
//!
//! The mutations are applied to the *struct* and re-serialized through
//! [`ExplorationCertificate::to_json_line`], which recomputes the document
//! digest honestly — so each test exercises the semantic replay checks in
//! `wb-verify`, not the byte-level digest gate (that gate gets its own
//! tests at the bottom, plus property coverage in `tests/property_based.rs`).

use wb_bench::certify::{certify_spec, CertifiedRun, Provenance};
use wb_core::registry::{self, BoundOracle, ProtocolVisitor, PROTOCOLS};
use wb_graph::{generators, Graph};
use wb_runtime::certificate::CertificateEdge;
use wb_runtime::{Engine, ExploreConfig, FaultPlan, Protocol};
use wb_verify::{machine::Machine, verify_line, VerifyError};

/// Certify `spec` on `g` under its native model.
fn certified(spec: &str, g: &Graph) -> CertifiedRun {
    certify_spec(
        spec,
        g,
        None,
        Provenance::default(),
        &ExploreConfig::default(),
    )
    .unwrap_or_else(|e| panic!("{spec} must certify: {e}"))
}

/// The known off-promise instance for `async-bipartite-bfs`: a triangle
/// with a pendant tail, whose exploration deadlocks (witness-bearing).
fn triangle_tail() -> Graph {
    Graph::from_edges(5, &[(1, 2), (1, 3), (2, 3), (3, 4), (4, 5)])
}

// ---------------------------------------------------------------------------
// Valid certificates: the whole registry, small graphs.
// ---------------------------------------------------------------------------

#[test]
fn every_registry_protocol_certifies_and_verifies() {
    for g in [generators::path(4), generators::cycle(4)] {
        for info in PROTOCOLS {
            let run = certified(info.name, &g);
            let summary = verify_line(&run.certificate.to_json_line())
                .unwrap_or_else(|e| panic!("fresh {} certificate must verify: {e}", info.name));
            assert_eq!(summary.protocol, info.name);
            assert_eq!(summary.states, run.distinct_states);
            assert_eq!(summary.terminals as u64, run.terminals);
            assert_eq!(summary.failures, run.failures);
        }
    }
}

#[test]
fn witness_bearing_certificate_verifies_end_to_end() {
    let run = certified("async-bipartite-bfs", &triangle_tail());
    assert!(run.failures > 0, "triangle-tail must deadlock");
    let summary = verify_line(&run.certificate.to_json_line())
        .expect("witness-bearing certificate must verify");
    assert_eq!(summary.failures, run.failures);
}

// ---------------------------------------------------------------------------
// Fingerprint parity: the verifier's naive Machine must hash configurations
// exactly like the engine's canonical fingerprint, on every model.
// ---------------------------------------------------------------------------

struct Parity<'a> {
    g: &'a Graph,
}

impl ProtocolVisitor for Parity<'_> {
    type Result = Result<(), String>;

    fn visit<P, B>(self, protocol: P, _bind: B) -> Self::Result
    where
        P: Protocol + Clone + Send + Sync,
        P::Node: Send + Sync,
        P::Output: Clone + PartialEq + std::fmt::Debug + Send + Sync,
        B: for<'g> Fn(&'g Graph) -> BoundOracle<'g, P::Output> + Send + Sync,
    {
        let mut engine = Engine::new(&protocol, self.g);
        engine.activation_phase();
        let mut machine = Machine::new(&protocol, self.g);
        assert_eq!(
            engine.canonical_fingerprint().as_u128(),
            machine.hash(),
            "initial configuration hash diverges"
        );
        // Drive one greedy schedule to completion, comparing after every
        // write: this crosses every hash ingredient (statuses, frozen
        // messages, board entries) for this protocol's model.
        let mut steps = 0;
        while let Some(&pick) = engine.active_set().first() {
            engine.step(pick);
            engine.activation_phase();
            machine
                .step(pick)
                .map_err(|f| format!("machine refused step {pick}: {f}"))?;
            assert_eq!(
                engine.canonical_fingerprint().as_u128(),
                machine.hash(),
                "hash diverges after step {steps} (pick {pick})"
            );
            steps += 1;
        }
        assert!(!machine.has_active(), "machine lags the engine's schedule");
        Ok(())
    }
}

#[test]
fn fingerprint_parity() {
    // One protocol per native model of the lattice, plus the off-promise
    // witness instance (exercises deadlocked boards).
    for (spec, g) in [
        ("build", generators::path(4)),
        ("mis:1", generators::cycle(4)),
        ("bfs", generators::path(4)),
        ("async-bipartite-bfs", generators::path(4)),
        ("async-bipartite-bfs", triangle_tail()),
    ] {
        registry::dispatch(spec, g.n(), Parity { g: &g })
            .unwrap_or_else(|e| panic!("{spec}: {e}"))
            .unwrap_or_else(|e| panic!("{spec}: {e}"));
    }
}

// ---------------------------------------------------------------------------
// Tamper battery: each mutation class is rejected with the structured error
// naming the offending edge / terminal / witness.
// ---------------------------------------------------------------------------

/// Base certificate for the edge/terminal mutations: small, passing, with a
/// non-trivial transition DAG.
fn base() -> CertifiedRun {
    certified("mis:1", &generators::path(4))
}

#[test]
fn tamper_dropped_edge_is_rejected() {
    let mut run = base();
    let initial = run.certificate.initial;
    let pos = run
        .certificate
        .edges
        .iter()
        .position(|e| e.from == initial)
        .expect("initial configuration has outgoing edges");
    let dropped = run.certificate.edges.remove(pos);
    let err = verify_line(&run.certificate.to_json_line()).unwrap_err();
    assert_eq!(
        err,
        VerifyError::MissingEdge {
            config: dropped.from,
            writer: dropped.writer,
        }
    );
}

#[test]
fn tamper_forged_edge_is_rejected() {
    let mut run = base();
    // A source hash no replay reaches: the walk completes, then the
    // unused-edge sweep names the forgery.
    let forged = CertificateEdge {
        from: u128::MAX,
        writer: 1,
        crash: false,
        to: run.certificate.initial,
    };
    run.certificate.edges.push(forged.clone());
    run.certificate.edges.sort();
    let err = verify_line(&run.certificate.to_json_line()).unwrap_err();
    assert_eq!(
        err,
        VerifyError::UnreachableEdge {
            from: forged.from,
            writer: forged.writer,
        }
    );
}

#[test]
fn tamper_stale_edge_target_is_rejected() {
    let mut run = base();
    let initial = run.certificate.initial;
    let pos = run
        .certificate
        .edges
        .iter()
        .position(|e| e.from == initial)
        .expect("initial configuration has outgoing edges");
    let honest_to = run.certificate.edges[pos].to;
    run.certificate.edges[pos].to ^= 1;
    let mutated = run.certificate.edges[pos].clone();
    let err = verify_line(&run.certificate.to_json_line()).unwrap_err();
    assert_eq!(
        err,
        VerifyError::EdgeTargetMismatch {
            from: mutated.from,
            writer: mutated.writer,
            claimed: mutated.to,
            actual: honest_to,
        }
    );
}

#[test]
fn tamper_flipped_verdict_is_rejected() {
    let mut run = base();
    let t = &mut run.certificate.terminals[0];
    t.verdict = !t.verdict;
    let (config, claimed) = (t.config, t.verdict);
    let err = verify_line(&run.certificate.to_json_line()).unwrap_err();
    assert_eq!(err, VerifyError::TerminalVerdict { config, claimed });
}

#[test]
fn tamper_truncated_terminal_set_is_rejected() {
    let mut run = base();
    let removed = run.certificate.terminals.remove(0);
    let err = verify_line(&run.certificate.to_json_line()).unwrap_err();
    assert_eq!(
        err,
        VerifyError::MissingTerminal {
            config: removed.config,
        }
    );
}

#[test]
fn tamper_stale_initial_hash_is_rejected() {
    let mut run = base();
    let honest = run.certificate.initial;
    run.certificate.initial ^= 1;
    let err = verify_line(&run.certificate.to_json_line()).unwrap_err();
    assert_eq!(
        err,
        VerifyError::InitialMismatch {
            claimed: honest ^ 1,
            actual: honest,
        }
    );
}

#[test]
fn tamper_reordered_witness_is_rejected() {
    let mut run = certified("async-bipartite-bfs", &triangle_tail());
    assert!(!run.certificate.witnesses.is_empty());
    let w = &mut run.certificate.witnesses[0];
    assert!(
        w.schedule.len() >= 2,
        "witness schedule long enough to reorder"
    );
    let original = w.schedule.clone();
    w.schedule.reverse();
    if w.schedule == original {
        // Palindromic schedule: rotate instead so the replay truly diverges.
        w.schedule.rotate_left(1);
    }
    assert_ne!(w.schedule, original);
    let err = verify_line(&run.certificate.to_json_line()).unwrap_err();
    assert!(
        matches!(
            err,
            VerifyError::WitnessStep { witness: 0, .. }
                | VerifyError::WitnessTrace { witness: 0, .. }
        ),
        "reordered witness must fail strict replay naming witness 0, got {err}"
    );
}

#[test]
fn tamper_state_count_is_rejected() {
    let mut run = base();
    let honest = run.certificate.states;
    run.certificate.states += 1;
    let err = verify_line(&run.certificate.to_json_line()).unwrap_err();
    assert_eq!(
        err,
        VerifyError::StateCount {
            claimed: honest + 1,
            actual: honest,
        }
    );
}

// ---------------------------------------------------------------------------
// Faulted certificates: the recorded fault schedule is replayed, and every
// way of lying about it — stripping the plan, inflating the budget, dropping
// or relabeling crash edges, forging a witness's died set — is rejected.
// ---------------------------------------------------------------------------

/// Certify `spec` on `g` under a `crash:1` fault plan.
fn certified_faulted(spec: &str, g: &Graph) -> CertifiedRun {
    certify_spec(
        spec,
        g,
        None,
        Provenance::default(),
        &ExploreConfig::default().with_faults(Some(FaultPlan::crash_stop(1))),
    )
    .unwrap_or_else(|e| panic!("{spec} must certify under crash:1: {e}"))
}

#[test]
fn faulted_certificate_records_the_plan_and_verifies() {
    let run = certified_faulted("mis:1", &generators::path(4));
    assert_eq!(run.certificate.faults.as_deref(), Some("crash:1"));
    assert!(
        run.certificate.edges.iter().any(|e| e.crash),
        "a crash:1 exploration must branch over at least one dying write"
    );
    let line = run.certificate.to_json_line();
    assert!(line.contains(r#""faults":"crash:1""#));
    let summary =
        verify_line(&line).expect("fresh faulted certificate must replay under its own plan");
    assert_eq!(summary.states, run.distinct_states);
}

#[test]
fn tamper_stripped_fault_plan_is_rejected() {
    // Erasing the plan leaves crash-marked edges in a nominally fault-free
    // document: the parser's structural gate refuses it before replay.
    let mut run = certified_faulted("mis:1", &generators::path(4));
    run.certificate.faults = None;
    let err = verify_line(&run.certificate.to_json_line()).unwrap_err();
    assert!(
        matches!(err, VerifyError::Field { field: "edges", .. }),
        "stripping the fault plan must orphan the crash edges, got {err}"
    );
}

#[test]
fn tamper_inflated_fault_budget_is_rejected() {
    // Claiming crash:2 over a crash:1 DAG owes crash edges the exploration
    // never took (configurations with one crash already spent the budget).
    let mut run = certified_faulted("mis:1", &generators::path(4));
    run.certificate.faults = Some("crash:2".into());
    let err = verify_line(&run.certificate.to_json_line()).unwrap_err();
    assert!(
        matches!(err, VerifyError::MissingEdge { .. }),
        "an inflated budget must demand crash edges that do not exist, got {err}"
    );
}

#[test]
fn tamper_dropped_crash_edge_is_rejected() {
    let mut run = certified_faulted("mis:1", &generators::path(4));
    let initial = run.certificate.initial;
    let pos = run
        .certificate
        .edges
        .iter()
        .position(|e| e.from == initial && e.crash)
        .expect("initial configuration has crash edges under crash:1");
    let dropped = run.certificate.edges.remove(pos);
    let err = verify_line(&run.certificate.to_json_line()).unwrap_err();
    assert_eq!(
        err,
        VerifyError::MissingEdge {
            config: dropped.from,
            writer: dropped.writer,
        }
    );
}

#[test]
fn tamper_relabeled_crash_flag_is_rejected() {
    // Flipping a crash edge's marker claims the write landed on an edge
    // whose target hash says it died — colliding with the honest survive
    // edge for the same (config, writer) pair, which the parser's
    // duplicate-edge gate catches before replay.
    let mut run = certified_faulted("mis:1", &generators::path(4));
    let initial = run.certificate.initial;
    let pos = run
        .certificate
        .edges
        .iter()
        .position(|e| e.from == initial && e.crash)
        .expect("initial configuration has crash edges under crash:1");
    run.certificate.edges[pos].crash = false;
    run.certificate.edges.sort();
    let err = verify_line(&run.certificate.to_json_line()).unwrap_err();
    assert!(
        matches!(err, VerifyError::DuplicateEdge { .. }),
        "a relabeled crash flag must break the edge accounting, got {err}"
    );
}

#[test]
fn tamper_witness_died_set_is_rejected() {
    // Forging a witness's crash schedule diverges from the pinned hash
    // trace at the first affected step: the same picks with a different
    // fate visit different configurations.
    let mut run = certified_faulted("async-bipartite-bfs", &triangle_tail());
    assert!(
        !run.certificate.witnesses.is_empty(),
        "triangle-tail must still fail under crash:1"
    );
    let w = &mut run.certificate.witnesses[0];
    if w.died.is_empty() {
        w.died = vec![w.schedule[0]];
    } else {
        w.died.clear();
    }
    let err = verify_line(&run.certificate.to_json_line()).unwrap_err();
    assert!(
        matches!(
            err,
            VerifyError::WitnessTrace { witness: 0, .. }
                | VerifyError::WitnessStep { witness: 0, .. }
                | VerifyError::WitnessShape { witness: 0, .. }
        ),
        "a forged died set must fail strict replay naming witness 0, got {err}"
    );
}

// ---------------------------------------------------------------------------
// Byte-level gates: anything that is not the one canonical spelling of the
// body is rejected before replay even starts.
// ---------------------------------------------------------------------------

#[test]
fn tamper_corrupted_bytes_are_rejected_by_digest_gate() {
    let line = base().certificate.to_json_line();
    // Flip one digit inside the states field, leaving the digest untouched.
    let idx = line.find("\"states\":").expect("states key present") + "\"states\":".len();
    let mut bytes = line.into_bytes();
    bytes[idx] = if bytes[idx] == b'9' {
        b'8'
    } else {
        bytes[idx] + 1
    };
    let corrupted = String::from_utf8(bytes).unwrap();
    let err = verify_line(&corrupted).unwrap_err();
    assert!(
        matches!(
            err,
            VerifyError::DigestMismatch | VerifyError::NonCanonical | VerifyError::Malformed(_)
        ),
        "byte corruption must trip a pre-replay gate, got {err}"
    );
}

#[test]
fn non_canonical_spelling_is_rejected() {
    let line = base().certificate.to_json_line();
    let padded = line.replacen(",\"edges\":", ", \"edges\":", 1);
    assert_ne!(line, padded);
    assert_eq!(verify_line(&padded).unwrap_err(), VerifyError::NonCanonical);
}

#[test]
fn wrong_format_version_is_rejected() {
    // The format tag is emitted by the serializer, not stored on the
    // struct, so the swap happens at the byte level — and the digest gate
    // fires first, which is exactly the point: a forged version cannot
    // borrow a real document's digest.
    let line = base().certificate.to_json_line();
    let forged = line.replacen("wb-cert/v1", "wb-cert/v9", 1);
    assert_ne!(line, forged);
    let err = verify_line(&forged).unwrap_err();
    assert!(
        matches!(
            err,
            VerifyError::DigestMismatch | VerifyError::Version { .. }
        ),
        "forged version tag must be rejected, got {err}"
    );
}
