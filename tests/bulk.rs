//! Bulk-vs-step differential: the columnar bulk engine must be
//! observationally identical to the step engine.
//!
//! For **every** registry protocol the bulk tier supports, on **every**
//! labeled graph up to `n = 5`, under **both** simultaneous models (the
//! native one, plus the Lemma 4 promotion `SIMASYNC → SIMSYNC` where it
//! applies), and for every schedule in a deterministic schedule set (all
//! `n!` permutations at `n ≤ 4`, a fixed seeded sample at `n = 5`):
//! running the same schedule through [`run_bulk`] and through the step
//! engine's [`ScheduleAdversary`] must produce the *same outcome*.
//!
//! Outcomes are compared through their `Debug` renderings — the two tiers
//! share each protocol's `Output` type, so equal renderings pin equal
//! values without threading the type through both visitor traits at once.

use shared_whiteboard::par::{par_drain, WorkQueue};
use shared_whiteboard::prelude::*;
use wb_core::registry::{self, BoundOracle, BulkVisitor, ProtocolVisitor};
use wb_runtime::bulk::{run_bulk, shuffled_schedule, BulkConfig};
use wb_runtime::BulkProtocol;

/// All graphs on `1..=n` nodes.
fn graphs_up_to(n: usize) -> impl Iterator<Item = Graph> {
    (1..=n).flat_map(enumerate::all_graphs)
}

/// Deterministic schedule set: every permutation for `n ≤ 4` (24 at most),
/// identity + reverse + six seeded shuffles at `n = 5`.
fn schedules(n: usize) -> Vec<Vec<NodeId>> {
    if n <= 4 {
        let mut all = Vec::new();
        let mut current: Vec<NodeId> = (1..=n as NodeId).collect();
        permute(&mut current, n, &mut all);
        all
    } else {
        let mut set = vec![
            (1..=n as NodeId).collect::<Vec<_>>(),
            (1..=n as NodeId).rev().collect::<Vec<_>>(),
        ];
        set.extend((0..6).map(|s| shuffled_schedule(n, s)));
        set
    }
}

fn permute(items: &mut Vec<NodeId>, k: usize, out: &mut Vec<Vec<NodeId>>) {
    if k <= 1 {
        out.push(items.clone());
        return;
    }
    for i in 0..k {
        items.swap(i, k - 1);
        permute(items, k - 1, out);
        items.swap(i, k - 1);
    }
}

/// The simultaneous models a protocol of `native` model runs under.
fn simultaneous_targets(native: Model) -> Vec<Model> {
    match native {
        Model::SimAsync => vec![Model::SimAsync, Model::SimSync],
        Model::SimSync => vec![Model::SimSync],
        other => panic!("bulk differential reached a free model {other}"),
    }
}

/// Step-engine outcomes, one `Debug` rendering per (schedule × model), in
/// deterministic order.
struct StepOutcomes<'a> {
    g: &'a Graph,
}

impl ProtocolVisitor for StepOutcomes<'_> {
    type Result = Vec<String>;
    fn visit<P, B>(self, protocol: P, _bind: B) -> Vec<String>
    where
        P: Protocol + Clone + Send + Sync,
        P::Node: Send + Sync,
        P::Output: Clone + PartialEq + std::fmt::Debug + Send + Sync,
        B: for<'g> Fn(&'g Graph) -> BoundOracle<'g, P::Output> + Send + Sync,
    {
        let g = self.g;
        let mut out = Vec::new();
        for schedule in schedules(g.n()) {
            for target in simultaneous_targets(protocol.model()) {
                let outcome = if target == protocol.model() {
                    run(&protocol, g, &mut ScheduleAdversary::new(schedule.clone())).outcome
                } else {
                    run(
                        &Promote::new(protocol.clone(), target),
                        g,
                        &mut ScheduleAdversary::new(schedule.clone()),
                    )
                    .outcome
                };
                out.push(format!("{target}:{outcome:?}"));
            }
        }
        out
    }
}

/// Bulk-engine outcomes over the identical (schedule × model) grid.
struct BulkOutcomes<'a> {
    g: &'a Graph,
}

impl BulkVisitor for BulkOutcomes<'_> {
    type Result = Vec<String>;
    fn visit<P, B>(self, protocol: P, _bind: B) -> Vec<String>
    where
        P: BulkProtocol + Send + Sync,
        P::Output: Clone + PartialEq + std::fmt::Debug + Send + Sync,
        B: for<'g> Fn(&'g Graph) -> BoundOracle<'g, P::Output> + Send + Sync,
    {
        let g = self.g;
        let mut out = Vec::new();
        // Tiny batch so multi-shard assembly is exercised even at n = 5.
        let config = BulkConfig::default().with_batch(2);
        for schedule in schedules(g.n()) {
            for target in simultaneous_targets(protocol.model()) {
                let report = run_bulk(&protocol, g, &schedule, Some(target), &config)
                    .expect("simultaneous targets include every bulk protocol's native model");
                out.push(format!("{target}:{:?}", report.outcome));
            }
        }
        out
    }
}

#[test]
fn bulk_equals_step_on_every_graph_to_n5_for_every_bulk_protocol() {
    let specs: Vec<&'static str> = registry::PROTOCOLS
        .iter()
        .filter(|p| p.bulk)
        .map(|p| p.name)
        .collect();
    assert!(
        specs.len() >= 10,
        "the bulk tier covers most of the registry"
    );
    let count = (1..=5).map(enumerate::count_all).sum::<u64>() as usize;
    let queue = WorkQueue::bounded(count);
    for g in graphs_up_to(5) {
        queue.push(g).expect("queue sized to hold every graph");
    }
    par_drain(&queue, |g, _| {
        for spec in &specs {
            let step = registry::dispatch(spec, g.n(), StepOutcomes { g: &g })
                .unwrap_or_else(|e| panic!("{spec}: {e}"));
            let bulk = registry::dispatch_bulk(spec, g.n(), BulkOutcomes { g: &g })
                .unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(
                step, bulk,
                "{spec} on {g:?}: bulk and step engines diverged"
            );
        }
    });
}

#[test]
fn bulk_board_matches_step_board_exactly() {
    // Beyond outcomes: the materialized bulk board (writers + message bits,
    // write order) must equal the step engine's board verbatim.
    struct Boards<'a> {
        g: &'a Graph,
        schedule: Vec<NodeId>,
    }
    impl BulkVisitor for Boards<'_> {
        type Result = Whiteboard;
        fn visit<P, B>(self, protocol: P, _bind: B) -> Whiteboard
        where
            P: BulkProtocol + Send + Sync,
            P::Output: Clone + PartialEq + std::fmt::Debug + Send + Sync,
            B: for<'g> Fn(&'g Graph) -> BoundOracle<'g, P::Output> + Send + Sync,
        {
            run_bulk(
                &protocol,
                self.g,
                &self.schedule,
                None,
                &BulkConfig::default().with_batch(3),
            )
            .expect("native model is always runnable")
            .board
            .to_whiteboard()
        }
    }
    struct StepBoard<'a> {
        g: &'a Graph,
        schedule: Vec<NodeId>,
    }
    impl ProtocolVisitor for StepBoard<'_> {
        type Result = Whiteboard;
        fn visit<P, B>(self, protocol: P, _bind: B) -> Whiteboard
        where
            P: Protocol + Clone + Send + Sync,
            P::Node: Send + Sync,
            P::Output: Clone + PartialEq + std::fmt::Debug + Send + Sync,
            B: for<'g> Fn(&'g Graph) -> BoundOracle<'g, P::Output> + Send + Sync,
        {
            run(
                &protocol,
                self.g,
                &mut ScheduleAdversary::new(self.schedule),
            )
            .board
        }
    }
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(17);
    let g = generators::gnp(12, 0.25, &mut rng);
    for spec in [
        "build:2",
        "mis:1",
        "two-cliques",
        "edge-count",
        "subgraph:3",
    ] {
        for seed in 0..4 {
            let schedule = shuffled_schedule(g.n(), seed);
            let bulk = registry::dispatch_bulk(
                spec,
                g.n(),
                Boards {
                    g: &g,
                    schedule: schedule.clone(),
                },
            )
            .unwrap();
            let step = registry::dispatch(spec, g.n(), StepBoard { g: &g, schedule }).unwrap();
            assert_eq!(bulk, step, "{spec} seed {seed}");
        }
    }
}
