//! Replay consistency: node state is a pure function of (local view, observed
//! prefix).
//!
//! DESIGN.md claims our incremental `Node::observe` interface is memoization
//! of the paper's pure `msg(v, N(v), W, …)` functions. This test *checks*
//! that: after a live run, every written message must be reproducible by a
//! freshly spawned node that is fed exactly the board prefix preceding the
//! write. (Valid for write-time-composing protocols, i.e. SIMSYNC and SYNC.)

use rand::rngs::StdRng;
use rand::SeedableRng;
use shared_whiteboard::prelude::*;

/// Recompose each message from a fresh node + prefix and compare.
fn assert_replay_consistent<P>(p: &P, g: &Graph, seed: u64)
where
    P: Protocol,
{
    assert!(
        !p.model().is_asynchronous(),
        "replay covers write-time composition (SIMSYNC/SYNC)"
    );
    let views = LocalView::all_of(g);
    let report = run(p, g, &mut RandomAdversary::new(seed));
    assert!(report.outcome.is_success());
    for (i, entry) in report.board.entries().iter().enumerate() {
        let view = &views[entry.writer as usize - 1];
        let mut fresh = p.spawn(view);
        let mut activated = fresh.wants_to_activate(view);
        for (seq, prior) in report.board.entries()[..i].iter().enumerate() {
            fresh.observe(view, seq, prior.writer, &prior.msg);
            if !activated {
                activated = fresh.wants_to_activate(view);
            }
        }
        assert!(
            activated,
            "writer {} must have been activatable",
            entry.writer
        );
        let recomposed = fresh.compose(view);
        assert_eq!(
            recomposed,
            entry.msg,
            "node {} message differs on replay (round {})",
            entry.writer,
            i + 1
        );
    }
}

#[test]
fn mis_messages_replay() {
    let mut rng = StdRng::seed_from_u64(1);
    for trial in 0..10 {
        let g = generators::gnp(20, 0.25, &mut rng);
        assert_replay_consistent(&MisGreedy::new((trial % 20 + 1) as NodeId), &g, trial);
    }
}

#[test]
fn two_cliques_messages_replay() {
    for half in [3usize, 6, 10] {
        let g = generators::two_cliques(half);
        assert_replay_consistent(&TwoCliques, &g, half as u64);
        let mut rng = StdRng::seed_from_u64(half as u64);
        let no = generators::connected_regular_impostor(half, &mut rng);
        assert_replay_consistent(&TwoCliques, &no, half as u64 + 1);
    }
}

#[test]
fn sync_bfs_messages_replay() {
    let mut rng = StdRng::seed_from_u64(2);
    for trial in 0..10 {
        let g = generators::gnp(18, 0.2, &mut rng);
        assert_replay_consistent(&SyncBfs, &g, trial);
    }
}

#[test]
fn sync_bfs_replay_on_structured_inputs() {
    assert_replay_consistent(&SyncBfs, &generators::clique(8), 3);
    assert_replay_consistent(&SyncBfs, &generators::cycle(9), 4);
    assert_replay_consistent(&SyncBfs, &generators::star(12), 5);
    let multi = generators::path(5).disjoint_union(&generators::cycle(4));
    assert_replay_consistent(&SyncBfs, &multi, 6);
}
