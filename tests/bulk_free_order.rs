//! Free-order bulk-vs-step differential: the event-driven bulk scheduler
//! must be observationally identical to the step engine under the **free**
//! target models SYNC and ASYNC.
//!
//! This mirrors the simultaneous-model suite in `tests/bulk.rs`, one tier
//! up the Lemma 4 lattice: for **every** registry protocol the bulk tier
//! supports, on **every** connected labeled graph up to `n = 5`, for every
//! schedule in a deterministic schedule set (all `n!` permutations at
//! `n ≤ 4`, identity + reverse + six seeded shuffles at `n = 5`), and for
//! both free targets: running the schedule through [`run_bulk`] with
//! `Some(Sync)` / `Some(Async)` must produce the same outcome as the step
//! engine running the Lemma 4 promotion [`Promote`] under a
//! [`PriorityAdversary`] built from the same schedule.
//!
//! The priority adversary is the step-side counterpart of the bulk
//! schedule stream: it picks the minimum-priority **active** node, so under
//! SYNC (everyone active) it walks the schedule exactly, and under ASYNC
//! (the promotion's sequential-activation chain) it follows the singleton
//! ready set — precisely the two disciplines the event scheduler encodes.
//!
//! Beyond outcomes, exact board-content equality is spot-checked on a
//! mid-size instance, and the crash differential pins the ASYNC chain's
//! deadlock against the step engine's.

use shared_whiteboard::par::{par_drain, WorkQueue};
use shared_whiteboard::prelude::*;
use wb_core::registry::{self, BoundOracle, BulkVisitor, ProtocolVisitor};
use wb_runtime::bulk::{run_bulk, run_bulk_crashed, shuffled_schedule, BulkConfig};
use wb_runtime::BulkProtocol;

/// All connected graphs on `1..=n` nodes.
fn connected_graphs_up_to(n: usize) -> Vec<Graph> {
    (1..=n).flat_map(enumerate::all_connected_graphs).collect()
}

/// Deterministic schedule set: every permutation for `n ≤ 4` (24 at most),
/// identity + reverse + six seeded shuffles at `n = 5`.
fn schedules(n: usize) -> Vec<Vec<NodeId>> {
    if n <= 4 {
        let mut all = Vec::new();
        let mut current: Vec<NodeId> = (1..=n as NodeId).collect();
        permute(&mut current, n, &mut all);
        all
    } else {
        let mut set = vec![
            (1..=n as NodeId).collect::<Vec<_>>(),
            (1..=n as NodeId).rev().collect::<Vec<_>>(),
        ];
        set.extend((0..6).map(|s| shuffled_schedule(n, s)));
        set
    }
}

fn permute(items: &mut Vec<NodeId>, k: usize, out: &mut Vec<Vec<NodeId>>) {
    if k <= 1 {
        out.push(items.clone());
        return;
    }
    for i in 0..k {
        items.swap(i, k - 1);
        permute(items, k - 1, out);
        items.swap(i, k - 1);
    }
}

/// Both free models include both simultaneous natives, so every bulk
/// protocol runs under both targets.
const FREE_TARGETS: [Model; 2] = [Model::Async, Model::Sync];

/// Step-engine outcomes: the Lemma 4 promotion to each free target, driven
/// by the schedule-priority adversary, one `Debug` rendering per
/// (schedule × target) in deterministic order.
struct StepOutcomes<'a> {
    g: &'a Graph,
}

impl ProtocolVisitor for StepOutcomes<'_> {
    type Result = Vec<String>;
    fn visit<P, B>(self, protocol: P, _bind: B) -> Vec<String>
    where
        P: Protocol + Clone + Send + Sync,
        P::Node: Send + Sync,
        P::Output: Clone + PartialEq + std::fmt::Debug + Send + Sync,
        B: for<'g> Fn(&'g Graph) -> BoundOracle<'g, P::Output> + Send + Sync,
    {
        let g = self.g;
        let mut out = Vec::new();
        for schedule in schedules(g.n()) {
            for target in FREE_TARGETS {
                let outcome = run(
                    &Promote::new(protocol.clone(), target),
                    g,
                    &mut PriorityAdversary::new(&schedule),
                )
                .outcome;
                out.push(format!("{target}:{outcome:?}"));
            }
        }
        out
    }
}

/// Bulk-engine outcomes over the identical (schedule × target) grid.
struct BulkOutcomes<'a> {
    g: &'a Graph,
}

impl BulkVisitor for BulkOutcomes<'_> {
    type Result = Vec<String>;
    fn visit<P, B>(self, protocol: P, _bind: B) -> Vec<String>
    where
        P: BulkProtocol + Send + Sync,
        P::Output: Clone + PartialEq + std::fmt::Debug + Send + Sync,
        B: for<'g> Fn(&'g Graph) -> BoundOracle<'g, P::Output> + Send + Sync,
    {
        let g = self.g;
        let mut out = Vec::new();
        // Tiny batch so multi-shard assembly is exercised even at n = 5.
        let config = BulkConfig::default().with_batch(2);
        for schedule in schedules(g.n()) {
            for target in FREE_TARGETS {
                let report = run_bulk(&protocol, g, &schedule, Some(target), &config)
                    .expect("free targets include every bulk protocol's native model");
                out.push(format!("{target}:{:?}", report.outcome));
            }
        }
        out
    }
}

#[test]
fn free_order_bulk_equals_step_on_every_connected_graph_to_n5() {
    let specs: Vec<&'static str> = registry::PROTOCOLS
        .iter()
        .filter(|p| p.bulk)
        .map(|p| p.name)
        .collect();
    assert!(
        specs.len() >= 10,
        "the bulk tier covers most of the registry"
    );
    let graphs = connected_graphs_up_to(5);
    let queue = WorkQueue::bounded(graphs.len());
    for g in graphs {
        queue.push(g).expect("queue sized to hold every graph");
    }
    par_drain(&queue, |g, _| {
        for spec in &specs {
            let step = registry::dispatch(spec, g.n(), StepOutcomes { g: &g })
                .unwrap_or_else(|e| panic!("{spec}: {e}"));
            let bulk = registry::dispatch_bulk(spec, g.n(), BulkOutcomes { g: &g })
                .unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(
                step, bulk,
                "{spec} on {g:?}: free-order bulk and step engines diverged"
            );
        }
    });
}

#[test]
fn free_order_bulk_board_matches_step_board_exactly() {
    // Beyond outcomes: the materialized bulk board (writers + message bits,
    // write order) must equal the step engine's board verbatim under both
    // free targets.
    struct Boards<'a> {
        g: &'a Graph,
        schedule: Vec<NodeId>,
        target: Model,
    }
    impl BulkVisitor for Boards<'_> {
        type Result = Whiteboard;
        fn visit<P, B>(self, protocol: P, _bind: B) -> Whiteboard
        where
            P: BulkProtocol + Send + Sync,
            P::Output: Clone + PartialEq + std::fmt::Debug + Send + Sync,
            B: for<'g> Fn(&'g Graph) -> BoundOracle<'g, P::Output> + Send + Sync,
        {
            run_bulk(
                &protocol,
                self.g,
                &self.schedule,
                Some(self.target),
                &BulkConfig::default().with_batch(3),
            )
            .expect("free targets are runnable")
            .board
            .to_whiteboard()
        }
    }
    struct StepBoard<'a> {
        g: &'a Graph,
        schedule: Vec<NodeId>,
        target: Model,
    }
    impl ProtocolVisitor for StepBoard<'_> {
        type Result = Whiteboard;
        fn visit<P, B>(self, protocol: P, _bind: B) -> Whiteboard
        where
            P: Protocol + Clone + Send + Sync,
            P::Node: Send + Sync,
            P::Output: Clone + PartialEq + std::fmt::Debug + Send + Sync,
            B: for<'g> Fn(&'g Graph) -> BoundOracle<'g, P::Output> + Send + Sync,
        {
            run(
                &Promote::new(protocol, self.target),
                self.g,
                &mut PriorityAdversary::new(&self.schedule),
            )
            .board
        }
    }
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(17);
    let g = generators::gnp(12, 0.25, &mut rng);
    for spec in [
        "build:2",
        "mis:1",
        "two-cliques",
        "edge-count",
        "subgraph:3",
    ] {
        for target in FREE_TARGETS {
            for seed in 0..4 {
                let schedule = shuffled_schedule(g.n(), seed);
                let bulk = registry::dispatch_bulk(
                    spec,
                    g.n(),
                    Boards {
                        g: &g,
                        schedule: schedule.clone(),
                        target,
                    },
                )
                .unwrap();
                let step = registry::dispatch(
                    spec,
                    g.n(),
                    StepBoard {
                        g: &g,
                        schedule,
                        target,
                    },
                )
                .unwrap();
                assert_eq!(bulk, step, "{spec} @ {target} seed {seed}");
            }
        }
    }
}

#[test]
fn crashed_async_chain_matches_step_engine_deadlock() {
    // Crashing a node in the ASYNC sequential-activation chain stalls every
    // higher ID. The bulk report and the step engine (crashing the same
    // victim when picked) must agree on outcome, crashed set, and board.
    use wb_core::MisGreedy;
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(23);
    let g = generators::gnp(10, 0.3, &mut rng);
    let protocol = MisGreedy::new(1);
    for victim in [3 as NodeId, 7] {
        let schedule = shuffled_schedule(g.n(), 2);
        let bulk = run_bulk_crashed(
            &protocol,
            &g,
            &schedule,
            Some(Model::Async),
            &BulkConfig::default(),
            &[victim],
        )
        .expect("ASYNC includes SIMSYNC");

        let promoted = Promote::new(protocol.clone(), Model::Async);
        let mut engine = Engine::new(&promoted, &g);
        let mut adv = PriorityAdversary::new(&schedule);
        let mut active: Vec<NodeId> = Vec::new();
        let step = loop {
            engine.activation_phase();
            engine.active_set_into(&mut active);
            if active.is_empty() {
                break engine.finish();
            }
            let pick = adv.pick(&active, engine.board());
            if pick == victim {
                engine.step_crash(pick);
            } else {
                engine.step(pick);
            }
        };

        assert_eq!(
            format!("{:?}", bulk.outcome),
            format!("{:?}", step.outcome),
            "victim {victim}"
        );
        assert!(
            matches!(bulk.outcome, Outcome::Deadlock { .. }),
            "victim {victim}: the chain must stall"
        );
        assert_eq!(bulk.crashed, step.crashed, "victim {victim}");
        assert_eq!(bulk.write_order, step.write_order, "victim {victim}");
        assert_eq!(
            bulk.board.to_whiteboard(),
            step.board,
            "victim {victim}: boards diverged"
        );
    }
}
