//! Failure injection: output functions and decoders confronted with corrupt
//! or adversarially assembled whiteboards.
//!
//! In the model these states are unreachable (the engine guarantees one
//! well-formed message per node), but the output functions are *referee*
//! code — defense in depth matters for a library, and the `BuildError`
//! variants must actually be reachable.

use shared_whiteboard::prelude::*;
use wb_core::build::BuildError;
use wb_math::powersum::{power_sums, NewtonDecoder};

/// Assemble a fake BUILD board: (id, degree, power sums) triples.
fn forge_build_board(n: usize, k: usize, rows: &[(NodeId, u64, Vec<u32>)]) -> Whiteboard {
    use wb_math::powersum::power_sum_field_bits;
    Whiteboard::from_messages(rows.iter().map(|(id, degree, nbrs)| {
        let mut w = BitWriter::new();
        w.write_bits(*id as u64, id_bits(n));
        w.write_bits(*degree, id_bits(n));
        let sums = power_sums(nbrs, k);
        for (idx, s) in sums.iter().enumerate() {
            w.write_big(s, power_sum_field_bits(n, idx as u32 + 1));
        }
        (*id, w.finish())
    }))
}

#[test]
fn build_detects_degree_sum_mismatch() {
    // Node 1 claims degree 1 toward node 2, but node 2 claims degree 0:
    // pruning 2 first leaves 1 pointing at a dead neighbor; pruning 1 first
    // drives node 2's degree negative. Either way: rejection, not panic.
    let p = BuildDegenerate::new(1);
    let board = forge_build_board(2, 1, &[(1, 1, vec![2]), (2, 0, vec![])]);
    let out = p.output(2, &board);
    assert!(out.is_err(), "{out:?}");
}

#[test]
fn build_detects_self_loop_claims() {
    // Node 1 claims itself as neighbor — the decode succeeds (1 is a valid
    // root) but the self-edge must be caught.
    let p = BuildDegenerate::new(1);
    let board = forge_build_board(2, 1, &[(1, 1, vec![1]), (2, 0, vec![])]);
    assert!(p.output(2, &board).is_err());
}

#[test]
fn build_detects_garbage_power_sums() {
    // Degree 2 with power sums of a single node: Newton's identities cannot
    // produce two distinct positive roots.
    let p = BuildDegenerate::new(2);
    let rows = vec![
        (1 as NodeId, 2u64, vec![2u32]),
        (2, 0, vec![]),
        (3, 0, vec![]),
    ];
    let board = forge_build_board(3, 2, &rows);
    assert_eq!(
        p.output(3, &board),
        Err(BuildError::Undecodable { node: 1 })
    );
}

#[test]
fn build_detects_asymmetric_adjacency() {
    // 1 claims {2}, 2 claims {3}, 3 claims {1}: every pruning order hits a
    // contradiction (a neighbor whose degree is already exhausted).
    let p = BuildDegenerate::new(1);
    let board = forge_build_board(3, 1, &[(1, 1, vec![2]), (2, 1, vec![3]), (3, 1, vec![1])]);
    assert!(p.output(3, &board).is_err());
}

#[test]
fn newton_decoder_rejects_all_garbage_inputs() {
    let dec = NewtonDecoder::new(30);
    // Non-integer elementary symmetric functions.
    assert_eq!(
        dec.decode(&[BigInt::from(3u64), BigInt::from(2u64)], 2),
        None
    );
    // Roots out of range.
    let sums = power_sums(&[40, 41], 2);
    assert_eq!(dec.decode(&sums, 2), None);
    // Repeated roots (power sums of a multiset are not a set image).
    let doubled: Vec<BigInt> = power_sums(&[5], 2).iter().map(|s| s + s).collect();
    assert_eq!(dec.decode(&doubled, 2), None);
}

#[test]
fn bfs_output_tolerates_unknown_graphs() {
    // The SYNC BFS output function only reads (id, layer, parent) fields; a
    // forged consistent board must decode without panicking.
    use wb_core::SyncBfs;
    let g = generators::path(4);
    let report = run(&SyncBfs, &g, &mut MinIdAdversary);
    // Shuffle the entries: output must not depend on board order beyond the
    // fields themselves (the forest is reconstructed per-id).
    let mut entries: Vec<(NodeId, BitVec)> = report
        .board
        .entries()
        .iter()
        .map(|e| (e.writer, e.msg.clone()))
        .collect();
    entries.reverse();
    let shuffled = Whiteboard::from_messages(entries);
    let f = SyncBfs.output(4, &shuffled);
    assert_eq!(f, checks::bfs_forest(&g));
}

#[test]
fn mixed_build_rejects_forged_boards_too() {
    use wb_core::BuildMixed;
    use wb_math::powersum::power_sum_field_bits;
    // Node 1 claims degree 2 on a 3-node board but provides co-sums that
    // decode to an alive node it also counts as neighbor.
    let n = 3;
    let k = 1;
    let board = Whiteboard::from_messages((1..=3 as NodeId).map(|id| {
        let mut w = BitWriter::new();
        w.write_bits(id as u64, id_bits(n));
        w.write_bits(2, id_bits(n)); // everyone claims degree 2 (triangle)…
        let nbrs: Vec<u32> = (1..=3).filter(|&u| u != id).collect();
        let sums = power_sums(&nbrs, k);
        for (idx, s) in sums.iter().enumerate() {
            w.write_big(s, power_sum_field_bits(n, idx as u32 + 1));
        }
        // …but provides the *wrong* co-sums (claims itself as non-neighbor).
        let cosums = power_sums(&[id], k);
        for (idx, s) in cosums.iter().enumerate() {
            w.write_big(s, power_sum_field_bits(n, idx as u32 + 1));
        }
        (id, w.finish())
    }));
    let p = BuildMixed::new(k);
    assert!(p.output(n, &board).is_err());
}
