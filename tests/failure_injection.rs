//! Failure injection: output functions and decoders confronted with corrupt
//! or adversarially assembled whiteboards.
//!
//! In the model these states are unreachable (the engine guarantees one
//! well-formed message per node), but the output functions are *referee*
//! code — defense in depth matters for a library, and the `BuildError`
//! variants must actually be reachable.

use shared_whiteboard::prelude::*;
use wb_core::build::BuildError;
use wb_math::powersum::{power_sums, NewtonDecoder};

/// Assemble a fake BUILD board: (id, degree, power sums) triples.
fn forge_build_board(n: usize, k: usize, rows: &[(NodeId, u64, Vec<u32>)]) -> Whiteboard {
    use wb_math::powersum::power_sum_field_bits;
    Whiteboard::from_messages(rows.iter().map(|(id, degree, nbrs)| {
        let mut w = BitWriter::new();
        w.write_bits(*id as u64, id_bits(n));
        w.write_bits(*degree, id_bits(n));
        let sums = power_sums(nbrs, k);
        for (idx, s) in sums.iter().enumerate() {
            w.write_big(s, power_sum_field_bits(n, idx as u32 + 1));
        }
        (*id, w.finish())
    }))
}

#[test]
fn build_detects_degree_sum_mismatch() {
    // Node 1 claims degree 1 toward node 2, but node 2 claims degree 0:
    // pruning 2 first leaves 1 pointing at a dead neighbor; pruning 1 first
    // drives node 2's degree negative. Either way: rejection, not panic.
    let p = BuildDegenerate::new(1);
    let board = forge_build_board(2, 1, &[(1, 1, vec![2]), (2, 0, vec![])]);
    let out = p.output(2, &board);
    assert!(out.is_err(), "{out:?}");
}

#[test]
fn build_detects_self_loop_claims() {
    // Node 1 claims itself as neighbor — the decode succeeds (1 is a valid
    // root) but the self-edge must be caught.
    let p = BuildDegenerate::new(1);
    let board = forge_build_board(2, 1, &[(1, 1, vec![1]), (2, 0, vec![])]);
    assert!(p.output(2, &board).is_err());
}

#[test]
fn build_detects_garbage_power_sums() {
    // Degree 2 with power sums of a single node: Newton's identities cannot
    // produce two distinct positive roots.
    let p = BuildDegenerate::new(2);
    let rows = vec![
        (1 as NodeId, 2u64, vec![2u32]),
        (2, 0, vec![]),
        (3, 0, vec![]),
    ];
    let board = forge_build_board(3, 2, &rows);
    assert_eq!(
        p.output(3, &board),
        Err(BuildError::Undecodable { node: 1 })
    );
}

#[test]
fn build_detects_asymmetric_adjacency() {
    // 1 claims {2}, 2 claims {3}, 3 claims {1}: every pruning order hits a
    // contradiction (a neighbor whose degree is already exhausted).
    let p = BuildDegenerate::new(1);
    let board = forge_build_board(3, 1, &[(1, 1, vec![2]), (2, 1, vec![3]), (3, 1, vec![1])]);
    assert!(p.output(3, &board).is_err());
}

#[test]
fn newton_decoder_rejects_all_garbage_inputs() {
    let dec = NewtonDecoder::new(30);
    // Non-integer elementary symmetric functions.
    assert_eq!(
        dec.decode(&[BigInt::from(3u64), BigInt::from(2u64)], 2),
        None
    );
    // Roots out of range.
    let sums = power_sums(&[40, 41], 2);
    assert_eq!(dec.decode(&sums, 2), None);
    // Repeated roots (power sums of a multiset are not a set image).
    let doubled: Vec<BigInt> = power_sums(&[5], 2).iter().map(|s| s + s).collect();
    assert_eq!(dec.decode(&doubled, 2), None);
}

#[test]
fn bfs_output_tolerates_unknown_graphs() {
    // The SYNC BFS output function only reads (id, layer, parent) fields; a
    // forged consistent board must decode without panicking.
    use wb_core::SyncBfs;
    let g = generators::path(4);
    let report = run(&SyncBfs, &g, &mut MinIdAdversary);
    // Shuffle the entries: output must not depend on board order beyond the
    // fields themselves (the forest is reconstructed per-id).
    let mut entries: Vec<(NodeId, BitVec)> = report
        .board
        .entries()
        .iter()
        .map(|e| (e.writer, e.msg.clone()))
        .collect();
    entries.reverse();
    let shuffled = Whiteboard::from_messages(entries);
    let f = SyncBfs.output(4, &shuffled);
    assert_eq!(f, checks::bfs_forest(&g));
}

#[test]
fn crash_stop_boards_are_well_formed_boards_minus_the_victims_rows() {
    // A crash-stop fault drops the victim's write *after* compose: the
    // referee reads a well-formed board that is simply missing one row, not
    // a board with a corrupt row. The output function must decode it, and
    // the registry's fault-aware oracle must accept the degraded outcome.
    use wb_core::registry::{self, BoundOracle, ProtocolVisitor};
    use wb_runtime::Engine;

    struct CrashedMisReferee<'a> {
        g: &'a Graph,
    }

    impl ProtocolVisitor for CrashedMisReferee<'_> {
        type Result = ();
        fn visit<P, B>(self, protocol: P, bind: B)
        where
            P: Protocol + Clone + Send + Sync,
            P::Node: Send + Sync,
            P::Output: Clone + PartialEq + std::fmt::Debug + Send + Sync,
            B: for<'g> Fn(&'g Graph) -> BoundOracle<'g, P::Output> + Send + Sync,
        {
            let mut engine = Engine::new(&protocol, self.g);
            for pick in [2, 3, 4, 1, 5] {
                if pick == 3 {
                    engine.step_crash(pick);
                } else {
                    engine.step(pick);
                }
            }
            let report = engine.finish();
            assert_eq!(report.crashed, vec![3]);
            assert!(
                report.board.entries().iter().all(|e| e.writer != 3),
                "the victim's write must never reach the board"
            );
            assert_eq!(report.board.entries().len(), 4);
            let oracle = bind(self.g);
            assert!(
                oracle(&report.outcome, &report.crashed),
                "fault-aware oracle rejected a legitimate degraded outcome: {:?}",
                report.outcome
            );
        }
    }

    let g = generators::path(5);
    registry::dispatch("mis:1", g.n(), CrashedMisReferee { g: &g }).expect("mis:1 resolves");
}

#[test]
fn build_referee_survives_suppressed_rows() {
    // Lossy-board faults hand the referee a board missing an arbitrary
    // subset of rows. Whatever the verdict (a reconstruction of the
    // surviving subgraph or a structured rejection), the decoder must not
    // panic on any single-victim suppression.
    let g = generators::path(4);
    let p = BuildDegenerate::new(2);
    let report = run(&p, &g, &mut MinIdAdversary);
    let full: Vec<(NodeId, BitVec)> = report
        .board
        .entries()
        .iter()
        .map(|e| (e.writer, e.msg.clone()))
        .collect();
    for victim in 1..=4 as NodeId {
        let board = Whiteboard::from_messages(full.iter().filter(|(w, _)| *w != victim).cloned());
        let _ = p.output(4, &board);
    }
}

#[test]
fn edge_count_referee_tolerates_odd_degree_casualties() {
    // A crashed endpoint of a path has odd degree, so the surviving degree
    // sum violates the handshake lemma — the referee must floor, not
    // assert, and the result must sit in the degraded bracket
    // [surviving edges, m]. (Found by the CI fault matrix: `certify
    // edge-count --faults crash:1` panicked on exactly this board.)
    use wb_core::registry::{self, BoundOracle, ProtocolVisitor};
    use wb_runtime::Engine;

    struct CrashedEndpoint<'a> {
        g: &'a Graph,
    }

    impl ProtocolVisitor for CrashedEndpoint<'_> {
        type Result = ();
        fn visit<P, B>(self, protocol: P, bind: B)
        where
            P: Protocol + Clone + Send + Sync,
            P::Node: Send + Sync,
            P::Output: Clone + PartialEq + std::fmt::Debug + Send + Sync,
            B: for<'g> Fn(&'g Graph) -> BoundOracle<'g, P::Output> + Send + Sync,
        {
            let mut engine = Engine::new(&protocol, self.g);
            for pick in 1..=self.g.n() as NodeId {
                if pick == 1 {
                    engine.step_crash(pick);
                } else {
                    engine.step(pick);
                }
            }
            let report = engine.finish();
            let oracle = bind(self.g);
            assert!(
                oracle(&report.outcome, &report.crashed),
                "degraded edge-count bracket rejected {:?}",
                report.outcome
            );
        }
    }

    let g = generators::path(3);
    registry::dispatch("edge-count", g.n(), CrashedEndpoint { g: &g })
        .expect("edge-count resolves");
}

#[test]
fn mixed_build_rejects_forged_boards_too() {
    use wb_core::BuildMixed;
    use wb_math::powersum::power_sum_field_bits;
    // Node 1 claims degree 2 on a 3-node board but provides co-sums that
    // decode to an alive node it also counts as neighbor.
    let n = 3;
    let k = 1;
    let board = Whiteboard::from_messages((1..=3 as NodeId).map(|id| {
        let mut w = BitWriter::new();
        w.write_bits(id as u64, id_bits(n));
        w.write_bits(2, id_bits(n)); // everyone claims degree 2 (triangle)…
        let nbrs: Vec<u32> = (1..=3).filter(|&u| u != id).collect();
        let sums = power_sums(&nbrs, k);
        for (idx, s) in sums.iter().enumerate() {
            w.write_big(s, power_sum_field_bits(n, idx as u32 + 1));
        }
        // …but provides the *wrong* co-sums (claims itself as non-neighbor).
        let cosums = power_sums(&[id], k);
        for (idx, s) in cosums.iter().enumerate() {
            w.write_big(s, power_sum_field_bits(n, idx as u32 + 1));
        }
        (id, w.finish())
    }));
    let p = BuildMixed::new(k);
    assert!(p.output(n, &board).is_err());
}
