//! Heavier model-checking runs, ignored by default. Run with
//! `cargo test --release --test stress -- --ignored` (minutes, not seconds).

use shared_whiteboard::prelude::*;
use wb_core::bfs::BfsOutput;

/// Theorem 10 over *all* 1024 labeled graphs on 5 nodes and every adversary
/// schedule.
#[test]
#[ignore = "minutes-long exhaustive sweep; run with --ignored"]
fn sync_bfs_exhaustive_all_graphs_n5() {
    let mut schedules = 0u64;
    for g in enumerate::all_graphs(5) {
        schedules += assert_all_schedules(&SyncBfs, &g, 50_000, |f| *f == checks::bfs_forest(&g));
    }
    println!("n = 5: {schedules} schedules across 1024 graphs");
}

/// Theorem 7 totality over all 5-node graphs (valid and invalid inputs).
#[test]
#[ignore = "minutes-long exhaustive sweep; run with --ignored"]
fn eob_bfs_exhaustive_all_graphs_n5() {
    for g in enumerate::all_graphs(5) {
        let valid = checks::is_even_odd_bipartite(&g);
        assert_all_schedules(&EobBfs, &g, 500_000, |out| match out {
            BfsOutput::Forest(f) => valid && *f == checks::bfs_forest(&g),
            BfsOutput::NotEvenOddBipartite => !valid,
        });
    }
}

/// Theorem 5 over all 5-node connected graphs, every root, every schedule.
#[test]
#[ignore = "minutes-long exhaustive sweep; run with --ignored"]
fn mis_exhaustive_connected_n5_all_roots() {
    for g in enumerate::all_connected_graphs(5) {
        for root in 1..=5 {
            assert_all_schedules(&MisGreedy::new(root), &g, 200, |set| {
                checks::is_rooted_mis(&g, set, root)
            });
        }
    }
}

/// BUILD recognition dichotomy on all 5-node graphs: reconstruct members,
/// reject non-members — under every schedule.
#[test]
#[ignore = "minutes-long exhaustive sweep; run with --ignored"]
fn build_recognition_dichotomy_n5() {
    for k in 1..=2usize {
        let p = BuildDegenerate::new(k);
        for g in enumerate::all_graphs(5) {
            let in_class = checks::degeneracy(&g).0 <= k;
            assert_all_schedules(&p, &g, 200, |out| match out {
                Ok(h) => in_class && *h == g,
                Err(_) => !in_class,
            });
        }
    }
}

/// Large-scale randomized soak: every protocol at n ≈ 2000 under three
/// adversaries.
#[test]
#[ignore = "large-n soak test; run with --ignored"]
fn soak_large_instances() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(99);
    let n = 2000;

    let g = wb_graph::generators::k_degenerate(n, 4, true, &mut rng);
    let report = run(&BuildDegenerate::new(4), &g, &mut RandomAdversary::new(1));
    assert!(matches!(report.outcome, Outcome::Success(Ok(ref h)) if h == &g));

    let g = wb_graph::generators::gnp(n, 4.0 / n as f64, &mut rng);
    let report = run(&SyncBfs, &g, &mut RandomAdversary::new(2));
    assert!(matches!(report.outcome, Outcome::Success(ref f) if *f == checks::bfs_forest(&g)));

    let g = wb_graph::generators::even_odd_bipartite_connected(n + 1, 0.003, &mut rng);
    let report = run(&EobBfs, &g, &mut RandomAdversary::new(3));
    assert!(
        matches!(report.outcome, Outcome::Success(BfsOutput::Forest(ref f)) if *f == checks::bfs_forest(&g))
    );

    let g = wb_graph::generators::gnp(n, 0.002, &mut rng);
    let report = run(&MisGreedy::new(7), &g, &mut RandomAdversary::new(4));
    assert!(matches!(report.outcome, Outcome::Success(ref s) if checks::is_rooted_mis(&g, s, 7)));
}
