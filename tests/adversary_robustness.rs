//! Protocol correctness under *structured* malicious schedulers, built with
//! [`FnAdversary`] — strategies that target each protocol's weak spot rather
//! than sampling uniformly.

use rand::rngs::StdRng;
use rand::SeedableRng;
use shared_whiteboard::prelude::*;
use wb_core::two_cliques::TwoCliquesVerdict;
use wb_runtime::FnAdversary;

/// Pick the active node with the largest degree (floods high-information
/// writers first).
fn highest_degree_first(g: &Graph) -> impl FnMut(&[NodeId], &Whiteboard) -> NodeId + '_ {
    move |active, _| *active.iter().max_by_key(|&&v| g.degree(v)).unwrap()
}

/// Pick the active node with the smallest degree (starves the referee of
/// hubs for as long as possible).
fn lowest_degree_first(g: &Graph) -> impl FnMut(&[NodeId], &Whiteboard) -> NodeId + '_ {
    move |active, _| *active.iter().min_by_key(|&&v| g.degree(v)).unwrap()
}

/// Alternate between the extremes of the active set.
fn zigzag() -> impl FnMut(&[NodeId], &Whiteboard) -> NodeId {
    let mut flip = false;
    move |active, _| {
        flip = !flip;
        if flip {
            active[0]
        } else {
            *active.last().unwrap()
        }
    }
}

#[test]
fn mis_survives_degree_targeted_schedules() {
    let mut rng = StdRng::seed_from_u64(21);
    for trial in 0..10 {
        let g = generators::gnp(30, 0.2, &mut rng);
        let root = (trial % 30 + 1) as NodeId;
        let p = MisGreedy::new(root);
        for mode in 0..3 {
            let report = match mode {
                0 => run(&p, &g, &mut FnAdversary(highest_degree_first(&g))),
                1 => run(&p, &g, &mut FnAdversary(lowest_degree_first(&g))),
                _ => run(&p, &g, &mut FnAdversary(zigzag())),
            };
            match report.outcome {
                Outcome::Success(set) => assert!(checks::is_rooted_mis(&g, &set, root)),
                other => panic!("{other:?}"),
            }
        }
    }
}

#[test]
fn sync_bfs_survives_degree_targeted_schedules() {
    let mut rng = StdRng::seed_from_u64(22);
    for trial in 0..10 {
        let g = generators::gnp(25, 0.15, &mut rng);
        for mode in 0..3 {
            let report = match mode {
                0 => run(&SyncBfs, &g, &mut FnAdversary(highest_degree_first(&g))),
                1 => run(&SyncBfs, &g, &mut FnAdversary(lowest_degree_first(&g))),
                _ => run(&SyncBfs, &g, &mut FnAdversary(zigzag())),
            };
            match report.outcome {
                Outcome::Success(f) => {
                    assert_eq!(f, checks::bfs_forest(&g), "trial {trial} mode {mode}")
                }
                other => panic!("{other:?}"),
            }
        }
    }
}

#[test]
fn eob_bfs_survives_withholding_schedules() {
    // Within each certificate wave, release the *largest* IDs first so the
    // min-ID bookkeeping (roots, parents) is maximally stressed.
    let mut rng = StdRng::seed_from_u64(23);
    for n in [15usize, 30] {
        let g = generators::even_odd_bipartite_connected(n, 0.25, &mut rng);
        let report = run(
            &EobBfs,
            &g,
            &mut FnAdversary(|a: &[NodeId], _: &Whiteboard| *a.last().unwrap()),
        );
        match report.outcome {
            Outcome::Success(BfsOutput::Forest(f)) => assert_eq!(f, checks::bfs_forest(&g)),
            other => panic!("{other:?}"),
        }
    }
}

#[test]
fn two_cliques_survives_boundary_first_schedules() {
    // Schedule the nodes incident to the crossing edges first — the hardest
    // order for label consistency.
    let mut rng = StdRng::seed_from_u64(24);
    for half in [4usize, 8] {
        let g = generators::connected_regular_impostor(half, &mut rng);
        let crossing: Vec<NodeId> = g
            .edges()
            .filter(|&(u, v)| (u as usize <= half) != (v as usize <= half))
            .flat_map(|(u, v)| [u, v])
            .collect();
        let mut priority = crossing.clone();
        for v in 1..=g.n() as NodeId {
            if !priority.contains(&v) {
                priority.push(v);
            }
        }
        let report = run(&TwoCliques, &g, &mut PriorityAdversary::new(&priority));
        assert_eq!(
            report.outcome,
            Outcome::Success(TwoCliquesVerdict::NotTwoCliques)
        );
    }
}

#[test]
fn board_aware_adversary_cannot_break_build() {
    // An adversary reading the board (delays the writer whose message would
    // reveal the most edges, i.e. highest encoded degree so far).
    let mut rng = StdRng::seed_from_u64(25);
    let g = generators::k_degenerate(25, 3, true, &mut rng);
    let p = BuildDegenerate::new(3);
    let report = run(
        &p,
        &g,
        &mut FnAdversary(|active: &[NodeId], board: &Whiteboard| {
            // Pseudo-malicious: pick based on current board parity.
            active[board.len() % active.len()]
        }),
    );
    assert_eq!(report.outcome, Outcome::Success(Ok(g)));
}
