//! Theorem 4's lattice, executed: every protocol of a weaker model runs
//! unchanged — with problem-level correct outputs — in every stronger model
//! through the Lemma 4 adapters.

use rand::rngs::StdRng;
use rand::SeedableRng;
use shared_whiteboard::prelude::*;
use wb_core::two_cliques::TwoCliquesVerdict;

#[test]
fn build_degenerate_promotes_to_all_four_models() {
    let mut rng = StdRng::seed_from_u64(11);
    let g = wb_graph::generators::k_degenerate(18, 2, true, &mut rng);
    for target in Model::ALL {
        let p = Promote::new(BuildDegenerate::new(2), target);
        for seed in 0..3 {
            let report = run(&p, &g, &mut RandomAdversary::new(seed));
            match &report.outcome {
                Outcome::Success(Ok(h)) => assert_eq!(h, &g, "{target}"),
                other => panic!("{target}: {other:?}"),
            }
        }
    }
}

#[test]
fn mis_promotes_to_async_and_sync() {
    let mut rng = StdRng::seed_from_u64(12);
    let g = wb_graph::generators::gnp(14, 0.3, &mut rng);
    for target in [Model::Async, Model::Sync] {
        for root in [1 as NodeId, 7, 14] {
            let p = Promote::new(MisGreedy::new(root), target);
            for seed in 0..3 {
                let report = run(&p, &g, &mut RandomAdversary::new(seed + root as u64));
                match &report.outcome {
                    Outcome::Success(set) => {
                        assert!(checks::is_rooted_mis(&g, set, root), "{target} root={root}")
                    }
                    other => panic!("{target}: {other:?}"),
                }
            }
        }
    }
}

#[test]
fn mis_promoted_to_async_forces_sequential_order_and_matches_native() {
    // The Lemma 4 construction: SIMSYNC → ASYNC via sequential activation.
    // The promoted run must equal the native run under the identity order.
    let mut rng = StdRng::seed_from_u64(13);
    let g = wb_graph::generators::gnp(10, 0.4, &mut rng);
    let root = 3;
    let native = run(&MisGreedy::new(root), &g, &mut MinIdAdversary);
    let promoted = run(
        &Promote::new(MisGreedy::new(root), Model::Async),
        &g,
        &mut MaxIdAdversary,
    );
    assert_eq!(promoted.write_order, (1..=10).collect::<Vec<_>>());
    match (native.outcome, promoted.outcome) {
        (Outcome::Success(a), Outcome::Success(b)) => assert_eq!(a, b),
        _ => panic!("expected success"),
    }
}

#[test]
fn two_cliques_promotes_exhaustively() {
    let yes = wb_graph::generators::two_cliques(3);
    for target in [Model::Async, Model::Sync] {
        let p = Promote::new(TwoCliques, target);
        assert_all_schedules(&p, &yes, 1000, |v| *v == TwoCliquesVerdict::TwoCliques);
    }
}

#[test]
fn eob_bfs_promotes_to_sync() {
    let mut rng = StdRng::seed_from_u64(14);
    let g = wb_graph::generators::even_odd_bipartite_connected(15, 0.3, &mut rng);
    let p = Promote::new(EobBfs, Model::Sync);
    let report = run(&p, &g, &mut RandomAdversary::new(2));
    match report.outcome {
        Outcome::Success(wb_core::bfs::BfsOutput::Forest(f)) => {
            assert_eq!(f, checks::bfs_forest(&g))
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn promoted_budgets_are_unchanged() {
    // Lemma 4 inclusions hold at the *same* message size f(n).
    for target in Model::ALL {
        let p = Promote::new(BuildDegenerate::new(3), target);
        assert_eq!(p.budget_bits(100), BuildDegenerate::new(3).budget_bits(100));
    }
}

#[test]
fn model_lattice_relations_match_paper() {
    use Model::*;
    // PSIMASYNC ⊆ PSIMSYNC ⊆ PASYNC ⊆ PSYNC (Lemma 4).
    let chain = [SimAsync, SimSync, Async, Sync];
    for (i, &weak) in chain.iter().enumerate() {
        for &strong in &chain[i..] {
            assert!(strong.includes(weak));
        }
    }
    assert!(!SimAsync.includes(SimSync));
    assert!(!SimSync.includes(Async));
    assert!(!Async.includes(Sync));
}
