//! Integration test regenerating the paper's Table 2 at test scale: every
//! positive cell is exercised by running the protocol in its own model under
//! exhaustive or randomized adversaries; every negative cell is backed by its
//! reduction + Lemma 3 counting verdict.

use rand::rngs::StdRng;
use rand::SeedableRng;
use shared_whiteboard::prelude::*;
use wb_core::bfs::BfsOutput as Eob;
use wb_core::two_cliques::TwoCliquesVerdict;
use wb_math::counting::MessageRegime;
use wb_reductions::lemma3::{verdict, Family};

/// Row 1: BUILD on k-degenerate graphs — **yes** in SIMASYNC (hence, by
/// Lemma 4, in all four models).
#[test]
fn build_degenerate_yes_in_simasync() {
    let mut rng = StdRng::seed_from_u64(1);
    for k in [1usize, 2, 3] {
        let g = wb_graph::generators::k_degenerate(24, k, true, &mut rng);
        let p = BuildDegenerate::new(k);
        let report = run(&p, &g, &mut RandomAdversary::new(k as u64));
        assert_eq!(report.outcome, Outcome::Success(Ok(g)));
    }
}

/// Row 2: rooted MIS — **yes** in SIMSYNC (Theorem 5)…
#[test]
fn mis_yes_in_simsync() {
    for g in enumerate::all_connected_graphs(4) {
        for root in 1..=4 {
            assert_all_schedules(&MisGreedy::new(root), &g, 30, |set| {
                checks::is_rooted_mis(&g, set, root)
            });
        }
    }
}

/// …and **no** in SIMASYNC (Theorem 6): the transformation turns any such
/// protocol into BUILD for all graphs, whose family outgrows the board.
#[test]
fn mis_no_in_simasync_counting() {
    for n in [256u64, 1024, 1 << 13] {
        let v = verdict(Family::AllGraphs, n, MessageRegime::LogN { c: 8 });
        assert!(v.impossible(), "n={n}: {v:?}");
        // even √n-bit messages are eventually insufficient
        let v2 = verdict(Family::AllGraphs, n * n, MessageRegime::SqrtN);
        assert!(v2.impossible());
    }
    // And the transformation itself reconstructs graphs end-to-end:
    let mut rng = StdRng::seed_from_u64(2);
    let g = wb_graph::generators::gnp(7, 0.4, &mut rng);
    let t =
        wb_reductions::mis_to_build::MisToBuild::new(wb_reductions::oracles::MisFullRowOracle::new);
    let report = run(&t, &g, &mut MinIdAdversary);
    assert_eq!(report.outcome, Outcome::Success(g));
}

/// Row 3: TRIANGLE — **no** in SIMASYNC (Theorem 3); the positive brackets we
/// ship are the degenerate-class and Θ(n)-bit protocols.
#[test]
fn triangle_no_in_simasync_counting_and_brackets() {
    for n in [1024u64, 4096] {
        assert!(verdict(
            Family::BipartiteFixedHalves,
            n,
            MessageRegime::LogN { c: 8 }
        )
        .impossible());
    }
    for g in enumerate::all_graphs(4) {
        let report = run(&TriangleFullRow, &g, &mut MaxIdAdversary);
        assert_eq!(report.outcome, Outcome::Success(checks::has_triangle(&g)));
    }
    let mut rng = StdRng::seed_from_u64(3);
    let g = wb_graph::generators::k_degenerate(18, 2, true, &mut rng);
    let p = TriangleViaBuild::new(2);
    let report = run(&p, &g, &mut RandomAdversary::new(5));
    assert_eq!(
        report.outcome,
        Outcome::Success(Ok(checks::has_triangle(&g)))
    );
}

/// Row 4: EOB-BFS — **yes** in ASYNC (Theorem 7)…
#[test]
fn eob_bfs_yes_in_async() {
    let mut rng = StdRng::seed_from_u64(4);
    for n in [9usize, 16, 33] {
        let g = wb_graph::generators::even_odd_bipartite_connected(n, 0.3, &mut rng);
        let report = run(&EobBfs, &g, &mut RandomAdversary::new(n as u64));
        assert_eq!(
            report.outcome,
            Outcome::Success(Eob::Forest(checks::bfs_forest(&g)))
        );
    }
}

/// …and **no** in SIMSYNC (Theorem 8): counting over the EOB family plus the
/// executable Fig 2 transformation.
#[test]
fn eob_bfs_no_in_simsync_counting_and_reduction() {
    for n in [1024u64, 4096] {
        assert!(verdict(Family::EvenOddBipartite, n, MessageRegime::LogN { c: 8 }).impossible());
    }
    let mut rng = StdRng::seed_from_u64(5);
    let h = wb_graph::generators::even_odd_bipartite_connected(6, 0.5, &mut rng);
    let t = wb_reductions::eobbfs_to_build::EobBfsToBuild::new(
        wb_reductions::oracles::BfsFullRowOracle,
    );
    let report = run(&t, &h, &mut RandomAdversary::new(11));
    assert_eq!(report.outcome, Outcome::Success(h));
}

/// Row 5: BFS — **yes** in SYNC (Theorem 10); the other three cells are the
/// paper's open problem, evidenced by the frozen-message ablation.
#[test]
fn bfs_yes_in_sync_open_elsewhere() {
    for g in enumerate::all_graphs(4) {
        assert_all_schedules(&SyncBfs, &g, 100, |f| *f == checks::bfs_forest(&g));
    }
    // Ablation: async freezing deadlocks on a triangle-with-tail.
    let g = Graph::from_edges(5, &[(1, 2), (2, 3), (1, 3), (3, 4), (4, 5)]);
    let report = run(&AsyncBipartiteBfs, &g, &mut MinIdAdversary);
    assert!(matches!(report.outcome, Outcome::Deadlock { .. }));
}

/// §5.1: 2-CLIQUES — yes in SIMSYNC; randomized yes in SIMASYNC (public coin).
#[test]
fn two_cliques_yes_simsync_and_randomized_simasync() {
    let mut rng = StdRng::seed_from_u64(6);
    let yes = wb_graph::generators::two_cliques(5);
    let no = wb_graph::generators::connected_regular_impostor(5, &mut rng);
    for seed in 0..5 {
        let ry = run(&TwoCliques, &yes, &mut RandomAdversary::new(seed));
        assert_eq!(ry.outcome, Outcome::Success(TwoCliquesVerdict::TwoCliques));
        let rn = run(&TwoCliques, &no, &mut RandomAdversary::new(seed));
        assert_eq!(
            rn.outcome,
            Outcome::Success(TwoCliquesVerdict::NotTwoCliques)
        );
        let pr = TwoCliquesRandomized::new(seed, 30);
        assert_eq!(
            run(&pr, &yes, &mut MinIdAdversary).outcome.unwrap(),
            TwoCliquesVerdict::TwoCliques
        );
        assert_eq!(
            run(&pr, &no, &mut MinIdAdversary).outcome.unwrap(),
            TwoCliquesVerdict::NotTwoCliques
        );
    }
}

/// SUBGRAPH_f (Theorem 9): positive half at f(n) bits.
#[test]
fn subgraph_yes_in_simasync() {
    let mut rng = StdRng::seed_from_u64(7);
    let g = wb_graph::generators::gnp(36, 0.3, &mut rng);
    let p = SubgraphPrefix::sqrt_of(36);
    let report = run(&p, &g, &mut RandomAdversary::new(1));
    assert_eq!(report.outcome, Outcome::Success(g.induced_prefix(6)));
}
