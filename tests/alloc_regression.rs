//! Allocation-count regression tests for the explorer's hot probe path.
//!
//! The schedule explorer's per-child cost budget is "O(changed bytes)":
//! the dedup probe — streaming the canonical configuration encoding into
//! the 128-bit fingerprint — must not touch the heap at all. This test
//! installs a counting global allocator (`wb-alloc-count`) and walks real
//! engines through write sequences on boards up to `n = 8`, asserting the
//! fingerprint probe performs **zero** allocations at every prefix, and
//! that probing a pre-reserved fingerprint seen-set stays allocation-free
//! too.

use shared_whiteboard::prelude::*;
use wb_alloc_count::allocations_on_this_thread;

#[global_allocator]
static ALLOC: wb_alloc_count::CountingAlloc = wb_alloc_count::CountingAlloc;

/// Assert `f` allocates nothing on this thread.
fn assert_no_allocations(label: &str, mut f: impl FnMut()) {
    // Warm-up run first: lazy one-time initialization (if any) is not what
    // this test is about.
    f();
    let before = allocations_on_this_thread();
    for _ in 0..8 {
        f();
    }
    let after = allocations_on_this_thread();
    assert_eq!(
        after - before,
        0,
        "{label}: the fingerprint probe path must not allocate"
    );
}

#[test]
fn fingerprint_probe_is_allocation_free_up_to_n8() {
    // One simultaneous-synchronous and one simultaneous-asynchronous
    // protocol: the latter keeps frozen messages in the encoding, the
    // former streams a growing board.
    for n in 2..=8usize {
        let g = wb_graph::generators::path(n);
        let p = MisGreedy::new(1);
        let mut engine = Engine::new(&p, &g);
        engine.activation_phase();
        // Probe at every board size 0..n (boards up to n = 8 entries).
        for round in 0..n {
            assert_no_allocations(&format!("MIS n={n} round={round}"), || {
                std::hint::black_box(engine.canonical_fingerprint());
            });
            let pick = engine.active_set()[0];
            engine.step(pick);
            engine.activation_phase();
        }
        assert_no_allocations(&format!("MIS n={n} terminal"), || {
            std::hint::black_box(engine.canonical_fingerprint());
        });

        let b = BuildDegenerate::new(1);
        let mut engine = Engine::new(&b, &g);
        engine.activation_phase();
        for round in 0..n {
            assert_no_allocations(&format!("BUILD n={n} round={round}"), || {
                std::hint::black_box(engine.canonical_fingerprint());
            });
            let pick = engine.active_set()[0];
            engine.step(pick);
            engine.activation_phase();
        }
    }
}

#[test]
fn fingerprint_probe_into_reserved_set_is_allocation_free() {
    // The full probe as the explorer runs it: fingerprint + insert into a
    // pre-reserved seen-set. A pre-sized set must not reallocate for the
    // handful of states this drives through it.
    use std::collections::HashSet;
    let g = wb_graph::generators::path(8);
    let p = MisGreedy::new(1);
    let mut engine = Engine::new(&p, &g);
    engine.activation_phase();
    let mut fingerprints: Vec<u128> = Vec::with_capacity(16);
    for _ in 0..8 {
        fingerprints.push(engine.canonical_fingerprint().as_u128());
        let pick = engine.active_set()[0];
        engine.step(pick);
        engine.activation_phase();
    }
    let mut seen: HashSet<u128, wb_par::PassthroughBuildHasher> =
        HashSet::with_capacity_and_hasher(64, Default::default());
    let before = allocations_on_this_thread();
    for &fp in &fingerprints {
        std::hint::black_box(seen.insert(fp));
    }
    let after = allocations_on_this_thread();
    assert_eq!(
        after - before,
        0,
        "inserting into a pre-reserved fingerprint set must not allocate"
    );
}
